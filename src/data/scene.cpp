#include "data/scene.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace upaq::data {

namespace {

constexpr float kPi = 3.14159265358979f;

/// Coarse overlap check in BEV using circumscribed circles — placement only
/// needs "not on top of each other", not exact separation. `spacing` scales
/// the margin: 1.0 is the clean road, < 1 packs jam scenes to near-contact.
bool too_close(const eval::Box3D& a, const eval::Box3D& b, float spacing) {
  const float dx = a.x - b.x, dy = a.y - b.y;
  const float ra = 0.5f * std::hypot(a.length, a.width);
  const float rb = 0.5f * std::hypot(b.length, b.width);
  return std::hypot(dx, dy) < (ra + rb) * 1.1f * spacing;
}

/// Rejection-samples `target` boxes drawn by `draw_box` into the scene,
/// keeping the pairwise spacing invariant against everything placed so far.
template <typename DrawBox>
void place_objects(Scene& scene, Rng& rng, int target, float spacing,
                   DrawBox&& draw_box) {
  int attempts = 0;
  const int placed_before = static_cast<int>(scene.objects.size());
  while (static_cast<int>(scene.objects.size()) - placed_before < target &&
         attempts < 200) {
    ++attempts;
    eval::Box3D box = draw_box(rng);
    bool ok = true;
    for (const auto& other : scene.objects)
      if (too_close(box, other, spacing)) {
        ok = false;
        break;
      }
    if (ok) scene.objects.push_back(box);
  }
}

}  // namespace

void SceneGenerator::place_cars(Scene& scene, Rng& rng) const {
  const int target = rng.uniform_int(cfg_.min_cars, cfg_.max_cars);
  place_objects(scene, rng, target, cfg_.spacing_factor, [&](Rng& r) {
    eval::Box3D car;
    car.length = std::max(3.0f, r.normal(cfg_.car_length_mean, cfg_.car_length_sd));
    car.width = std::max(1.4f, r.normal(cfg_.car_width_mean, cfg_.car_width_sd));
    car.height = std::max(1.2f, r.normal(cfg_.car_height_mean, cfg_.car_height_sd));
    car.x = r.uniform(cfg_.x_min + 3.0f, cfg_.x_max - 3.0f);
    car.y = r.uniform(cfg_.y_min + 2.0f, cfg_.y_max - 2.0f);
    car.z = car.height * 0.5f;
    car.yaw = r.uniform(-3.14159265f, 3.14159265f);
    car.label = eval::kClassCar;
    return car;
  });
}

void SceneGenerator::place_pedestrians(Scene& scene, Rng& rng) const {
  const int target = rng.uniform_int(cfg_.min_pedestrians, cfg_.max_pedestrians);
  place_objects(scene, rng, target, cfg_.spacing_factor, [&](Rng& r) {
    eval::Box3D ped;
    // Square BEV footprint: a standing person has no meaningful heading
    // extent, so length == width (one draw keeps the distributions sane).
    const float extent =
        std::max(0.35f, r.normal(cfg_.ped_extent_mean, cfg_.ped_extent_sd));
    ped.length = extent;
    ped.width = extent;
    ped.height = std::max(1.2f, r.normal(cfg_.ped_height_mean, cfg_.ped_height_sd));
    ped.x = r.uniform(cfg_.x_min + 1.0f, cfg_.x_max - 1.0f);
    ped.y = r.uniform(cfg_.y_min + 1.0f, cfg_.y_max - 1.0f);
    ped.z = ped.height * 0.5f;
    ped.yaw = r.uniform(-3.14159265f, 3.14159265f);
    ped.label = eval::kClassPedestrian;
    return ped;
  });
}

void SceneGenerator::place_cyclists(Scene& scene, Rng& rng) const {
  const int target = rng.uniform_int(cfg_.min_cyclists, cfg_.max_cyclists);
  place_objects(scene, rng, target, cfg_.spacing_factor, [&](Rng& r) {
    eval::Box3D cyc;
    cyc.length = std::max(1.2f, r.normal(cfg_.cyclist_length_mean,
                                         cfg_.cyclist_length_sd));
    cyc.width = std::max(0.4f, r.normal(cfg_.cyclist_width_mean,
                                        cfg_.cyclist_width_sd));
    cyc.height = std::max(1.2f, r.normal(cfg_.cyclist_height_mean,
                                         cfg_.cyclist_height_sd));
    cyc.x = r.uniform(cfg_.x_min + 1.5f, cfg_.x_max - 1.5f);
    cyc.y = r.uniform(cfg_.y_min + 1.0f, cfg_.y_max - 1.0f);
    cyc.z = cyc.height * 0.5f;
    cyc.yaw = r.uniform(-3.14159265f, 3.14159265f);
    cyc.label = eval::kClassCyclist;
    return cyc;
  });
}

void SceneGenerator::simulate_lidar(Scene& scene, Rng& rng) const {
  // Object returns: sample the faces oriented toward the sensor plus the
  // roof; density decays with distance like a real spinning LiDAR, scaled by
  // visible surface area for the small classes, floored at
  // min_object_points so distant objects never become point-less ghosts.
  for (const auto& obj : scene.objects) {
    const float dist = std::max(2.0f, std::hypot(obj.x, obj.y));
    int budget;
    if (obj.label == eval::kClassCar) {
      budget = std::max(cfg_.min_object_points,
                        static_cast<int>(cfg_.points_at_10m * 10.0f / dist));
    } else {
      // points_at_10m is calibrated on the mean car's visible surface.
      const float area_scale =
          ((obj.length + obj.width) * obj.height) /
          ((cfg_.car_length_mean + cfg_.car_width_mean) * cfg_.car_height_mean);
      budget = std::max(
          cfg_.min_object_points,
          static_cast<int>(cfg_.points_at_10m * 10.0f / dist * area_scale));
    }
    const float c = std::cos(obj.yaw), s = std::sin(obj.yaw);
    // Direction from object to sensor, expressed in the object's local frame.
    const float to_sensor_x = -(c * obj.x + s * obj.y);
    const float to_sensor_y = -(-s * obj.x + c * obj.y);
    for (int i = 0; i < budget; ++i) {
      float lx, ly, lz;
      if (obj.label == eval::kClassCar) {
        // Pick a face biased toward the visible sides. Local frame: +-l/2 on
        // x (front/back), +-w/2 on y (sides), top at +h/2.
        const int face = rng.uniform_int(0, 9);
        if (face < 4) {
          // Length-side face toward the sensor.
          lx = rng.uniform(-obj.length * 0.5f, obj.length * 0.5f);
          ly = (to_sensor_y >= 0 ? 1.0f : -1.0f) * obj.width * 0.5f;
          lz = rng.uniform(0.0f, obj.height);
        } else if (face < 8) {
          // Front/back face toward the sensor.
          lx = (to_sensor_x >= 0 ? 1.0f : -1.0f) * obj.length * 0.5f;
          ly = rng.uniform(-obj.width * 0.5f, obj.width * 0.5f);
          lz = rng.uniform(0.0f, obj.height);
        } else {
          // Roof.
          lx = rng.uniform(-obj.length * 0.5f, obj.length * 0.5f);
          ly = rng.uniform(-obj.width * 0.5f, obj.width * 0.5f);
          lz = obj.height;
        }
      } else {
        // Pedestrians/cyclists have no flat car-like faces; a loose volume
        // shell is a good-enough return model for boxes this small.
        lx = rng.uniform(-obj.length * 0.5f, obj.length * 0.5f);
        ly = rng.uniform(-obj.width * 0.5f, obj.width * 0.5f);
        lz = rng.uniform(0.0f, obj.height);
      }
      LidarPoint p;
      p.x = obj.x + c * lx - s * ly + rng.normal(0.0f, cfg_.point_noise_sd);
      p.y = obj.y + s * lx + c * ly + rng.normal(0.0f, cfg_.point_noise_sd);
      p.z = lz + rng.normal(0.0f, cfg_.point_noise_sd);
      p.intensity = obj.label == eval::kClassCar ? rng.uniform(0.3f, 0.9f)
                                                 : rng.uniform(0.2f, 0.7f);
      scene.points.push_back(p);
    }
  }
  // Ground clutter.
  for (int i = 0; i < cfg_.ground_clutter_points; ++i) {
    LidarPoint p;
    p.x = rng.uniform(cfg_.x_min, cfg_.x_max);
    p.y = rng.uniform(cfg_.y_min, cfg_.y_max);
    p.z = std::fabs(rng.normal(0.0f, 0.04f));
    p.intensity = rng.uniform(0.05f, 0.4f);
    scene.points.push_back(p);
  }
  // Distractor clusters: bush/pole-shaped blobs that are NOT cars; they put
  // false-positive pressure on the detector so AP is a meaningful number.
  for (int d = 0; d < cfg_.distractor_clusters; ++d) {
    const float ox = rng.uniform(cfg_.x_min + 2.0f, cfg_.x_max - 2.0f);
    const float oy = rng.uniform(cfg_.y_min + 1.0f, cfg_.y_max - 1.0f);
    const float radius = rng.uniform(0.25f, 0.8f);
    const float height = rng.uniform(0.5f, 2.2f);
    const int count = rng.uniform_int(10, 40);
    for (int i = 0; i < count; ++i) {
      LidarPoint p;
      p.x = ox + rng.normal(0.0f, radius);
      p.y = oy + rng.normal(0.0f, radius);
      p.z = rng.uniform(0.0f, height);
      p.intensity = rng.uniform(0.2f, 0.8f);
      scene.points.push_back(p);
    }
  }
}

void SceneGenerator::apply_range_noise(Scene& scene, Rng& rng) const {
  // Range-proportional jitter on every point (three draws each, so the draw
  // count is a pure function of the clean scene).
  for (auto& p : scene.points) {
    const float r = std::hypot(p.x, p.y);
    const float sd = std::max(
        1e-6f, cfg_.point_noise_sd * cfg_.range_noise_scale * (r / 10.0f));
    p.x += rng.normal(0.0f, sd);
    p.y += rng.normal(0.0f, sd);
    p.z += rng.normal(0.0f, sd);
  }
}

void SceneGenerator::apply_occlusion(Scene& scene, Rng& rng) const {
  // Every object casts an angular shadow: points at strictly greater range
  // inside its azimuth cone survive only with probability occlusion_keep.
  // far_range includes the occluder's own radius plus a noise margin, so the
  // occluder's returns — and anything in front of it — are never removed.
  struct Shadow {
    float az, half_angle, far_range;
  };
  std::vector<Shadow> shadows;
  shadows.reserve(scene.objects.size());
  for (const auto& obj : scene.objects) {
    const float dist = std::hypot(obj.x, obj.y);
    const float r = 0.5f * std::hypot(obj.length, obj.width);
    if (dist <= r + 0.5f) continue;  // sensor effectively inside the box
    Shadow sh;
    sh.az = std::atan2(obj.y, obj.x);
    sh.half_angle = std::asin(std::min(0.999f, r / dist));
    sh.far_range = dist + r + 0.3f;
    shadows.push_back(sh);
  }
  if (shadows.empty()) return;
  std::vector<LidarPoint> kept;
  kept.reserve(scene.points.size());
  for (const auto& p : scene.points) {
    const float pr = std::hypot(p.x, p.y);
    bool shadowed = false;
    for (const auto& sh : shadows) {
      if (pr <= sh.far_range) continue;
      float d = std::atan2(p.y, p.x) - sh.az;
      while (d > kPi) d -= 2.0f * kPi;
      while (d < -kPi) d += 2.0f * kPi;
      if (std::fabs(d) < sh.half_angle) {
        shadowed = true;
        break;
      }
    }
    // One Bernoulli draw per shadowed point: the draw count depends only on
    // the clean geometry, keeping the stream deterministic.
    if (!shadowed || rng.bernoulli(cfg_.occlusion_keep)) kept.push_back(p);
  }
  scene.points = std::move(kept);
}

void SceneGenerator::apply_dropout(Scene& scene, Rng& rng) const {
  std::vector<LidarPoint> kept;
  kept.reserve(scene.points.size());
  for (const auto& p : scene.points)
    if (!rng.bernoulli(cfg_.dropout_fraction)) kept.push_back(p);
  scene.points = std::move(kept);
}

Scene SceneGenerator::sample(Rng& rng) const {
  Scene scene;
  place_cars(scene, rng);
  // Disabled features must not consume Rng draws: the default config has to
  // reproduce the pre-scenario generator bit-for-bit (zoo-cache invariant).
  if (cfg_.max_pedestrians > 0) place_pedestrians(scene, rng);
  if (cfg_.max_cyclists > 0) place_cyclists(scene, rng);
  simulate_lidar(scene, rng);
  if (cfg_.range_noise_scale > 0.0f) apply_range_noise(scene, rng);
  if (cfg_.occlusion) apply_occlusion(scene, rng);
  if (cfg_.dropout_fraction > 0.0f) apply_dropout(scene, rng);
  scene.render = cfg_.render;
  return scene;
}

bool Camera::project(float x, float y, float z, float& u, float& v) const {
  if (x <= 0.5f) return false;
  u = cx - fx * (y / x);
  v = cy - fy * ((z - height_above_ground) / x);
  return true;
}

void Camera::unproject(float u, float v, float depth, float& x, float& y,
                       float& z) const {
  x = depth;
  y = -(u - cx) * depth / fx;
  z = height_above_ground - (v - cy) * depth / fy;
}

Tensor render_camera(const Scene& scene, const Camera& cam, Rng& rng) {
  Tensor img({3, cam.height, cam.width});
  // Background: sky gradient above the horizon line, textured road below.
  const float horizon = cam.cy - 2.0f;
  for (int v = 0; v < cam.height; ++v) {
    for (int u = 0; u < cam.width; ++u) {
      float r, g, b;
      if (static_cast<float>(v) < horizon) {
        const float t = static_cast<float>(v) / std::max(horizon, 1.0f);
        r = 0.45f + 0.1f * t;
        g = 0.55f + 0.1f * t;
        b = 0.75f;
      } else {
        const float t = (static_cast<float>(v) - horizon) /
                        std::max(static_cast<float>(cam.height) - horizon, 1.0f);
        r = g = b = 0.28f + 0.1f * t;
      }
      img.at(0, v, u) = r;
      img.at(1, v, u) = g;
      img.at(2, v, u) = b;
    }
  }
  // Draw objects far-to-near so nearer objects occlude farther ones.
  std::vector<const eval::Box3D*> order;
  for (const auto& obj : scene.objects) order.push_back(&obj);
  std::sort(order.begin(), order.end(),
            [](const eval::Box3D* a, const eval::Box3D* b) { return a->x > b->x; });
  for (const auto* obj : order) {
    // Project all 8 corners; fill the projected axis-aligned hull.
    const auto corners = eval::bev_corners(*obj);
    float umin = 1e9f, umax = -1e9f, vmin = 1e9f, vmax = -1e9f;
    bool visible = false;
    for (const auto& cpt : corners) {
      for (float zz : {obj->z - obj->height * 0.5f, obj->z + obj->height * 0.5f}) {
        float u, v;
        if (cam.project(static_cast<float>(cpt.x), static_cast<float>(cpt.y), zz,
                        u, v)) {
          visible = true;
          umin = std::min(umin, u);
          umax = std::max(umax, u);
          vmin = std::min(vmin, v);
          vmax = std::max(vmax, v);
        }
      }
    }
    if (!visible) continue;
    // Albedo jitter makes brightness an imperfect depth cue (monocular depth
    // must come from size/position, like real SMOKE).
    const float albedo = rng.uniform(0.35f, 0.95f);
    const float shade = albedo * std::min(1.0f, 14.0f / obj->x);
    const float hue = rng.uniform(-0.12f, 0.12f);
    const int u0 = std::max(0, static_cast<int>(std::floor(umin)));
    const int u1 = std::min(cam.width - 1, static_cast<int>(std::ceil(umax)));
    const int v0 = std::max(0, static_cast<int>(std::floor(vmin)));
    const int v1 = std::min(cam.height - 1, static_cast<int>(std::ceil(vmax)));
    for (int v = v0; v <= v1; ++v) {
      for (int u = u0; u <= u1; ++u) {
        // Simple body shading: darker toward the bottom (shadow).
        const float frac = (v1 > v0) ? static_cast<float>(v - v0) / (v1 - v0) : 0.0f;
        const float body = shade * (1.0f - 0.35f * frac);
        img.at(0, v, u) = std::clamp(body + hue, 0.0f, 1.0f);
        img.at(1, v, u) = std::clamp(body, 0.0f, 1.0f);
        img.at(2, v, u) = std::clamp(body - hue, 0.0f, 1.0f);
      }
    }
  }
  // Night / low-contrast conditions: rescale the lit image around the
  // ambient mid-grey. Gated so the default render stays bit-identical.
  const RenderConditions& rc = scene.render;
  if (rc.ambient != 1.0f || rc.contrast != 1.0f) {
    const float mid = 0.5f * rc.ambient;
    for (auto& p : img.flat())
      p = std::clamp(mid + (p * rc.ambient - mid) * rc.contrast, 0.0f, 1.0f);
  }
  // Sensor noise (low light is noisier).
  for (auto& p : img.flat()) {
    p = std::clamp(p + rng.normal(0.0f, rc.noise_sd), 0.0f, 1.0f);
  }
  return img;
}

Dataset make_dataset(int scene_count, std::uint64_t seed, const SceneConfig& cfg) {
  UPAQ_CHECK(scene_count >= 10, "dataset needs at least 10 scenes");
  SceneGenerator gen(cfg);
  Rng rng(seed);
  Dataset ds;
  const int n_train = scene_count * 8 / 10;
  const int n_val = scene_count / 10;
  for (int i = 0; i < scene_count; ++i) {
    Scene s = gen.sample(rng);
    if (i < n_train) {
      ds.train.push_back(std::move(s));
    } else if (i < n_train + n_val) {
      ds.val.push_back(std::move(s));
    } else {
      ds.test.push_back(std::move(s));
    }
  }
  return ds;
}

}  // namespace upaq::data
