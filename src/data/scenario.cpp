#include "data/scenario.h"

#include "tensor/check.h"

namespace upaq::data {

const std::vector<ScenarioFamily>& all_scenario_families() {
  static const std::vector<ScenarioFamily> families = {
      ScenarioFamily::kBaseline, ScenarioFamily::kJam,
      ScenarioFamily::kOcclusion, ScenarioFamily::kDropoutNoise,
      ScenarioFamily::kNight};
  return families;
}

std::string scenario_name(ScenarioFamily family) {
  switch (family) {
    case ScenarioFamily::kBaseline: return "baseline";
    case ScenarioFamily::kJam: return "jam";
    case ScenarioFamily::kOcclusion: return "occlusion";
    case ScenarioFamily::kDropoutNoise: return "dropout_noise";
    case ScenarioFamily::kNight: return "night";
  }
  return "unknown";
}

bool scenario_from_name(const std::string& name, ScenarioFamily& out) {
  for (ScenarioFamily f : all_scenario_families()) {
    if (scenario_name(f) == name) {
      out = f;
      return true;
    }
  }
  return false;
}

SceneConfig scenario_config(ScenarioFamily family) {
  SceneConfig cfg;
  // Every family carries the multi-class world so the safety metrics have
  // pedestrians and cyclists to measure in each report row.
  cfg.min_pedestrians = 1;
  cfg.max_pedestrians = 3;
  cfg.min_cyclists = 1;
  cfg.max_cyclists = 2;
  switch (family) {
    case ScenarioFamily::kBaseline:
      break;
    case ScenarioFamily::kJam:
      // Rush hour: many cars packed toward near-contact, extra clutter.
      cfg.min_cars = 8;
      cfg.max_cars = 14;
      cfg.spacing_factor = 0.6f;
      cfg.distractor_clusters = 5;
      break;
    case ScenarioFamily::kOcclusion:
      // More foreground occluders, aggressive shadowing behind them.
      cfg.min_cars = 3;
      cfg.occlusion = true;
      cfg.occlusion_keep = 0.1f;
      break;
    case ScenarioFamily::kDropoutNoise:
      // Wet-road sensor degradation: beam misfires + range jitter.
      cfg.dropout_fraction = 0.3f;
      cfg.range_noise_scale = 1.5f;
      break;
    case ScenarioFamily::kNight:
      // Low-light camera path; LiDAR itself is unaffected at night.
      cfg.render.ambient = 0.35f;
      cfg.render.contrast = 0.55f;
      cfg.render.noise_sd = 0.05f;
      break;
  }
  return cfg;
}

std::vector<Scene> make_scenario_scenes(ScenarioFamily family, int count,
                                        std::uint64_t seed) {
  UPAQ_CHECK(count > 0, "make_scenario_scenes: count must be positive");
  SceneGenerator gen(scenario_config(family));
  // Golden-ratio fold keeps per-family streams independent at a shared seed.
  Rng rng(seed ^
          (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(family) + 1)));
  std::vector<Scene> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(gen.sample(rng));
  return out;
}

}  // namespace upaq::data
