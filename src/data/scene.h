// Synthetic KITTI-like scenes: the dataset substitute.
//
// Each scene is a ground plane with randomly posed boxes inside the
// detection range — cars plus optional pedestrians and cyclists (small,
// safety-critical classes with their own size distributions) — observed by
// (a) a simulated LiDAR that samples the box faces visible from the sensor
// plus ground clutter and distractor objects, and (b) a pinhole camera
// rendering shaded box silhouettes with perspective scaling. Ground truth is
// the exact 9-DoF box list, so the KITTI-style AP evaluation runs unchanged.
//
// On top of the clean world, SceneConfig exposes composable corruption
// knobs for the scenario suite: near-contact traffic-jam spacing, angular
// shadow occlusion, LiDAR dropout, range-dependent noise, and night /
// low-contrast render conditions for the camera path. Every knob is inert at
// its default value in the strongest sense: a disabled feature draws nothing
// from the Rng, so the default config produces scenes bitwise identical to
// the pre-scenario generator — the committed zoo cache and every historical
// mAP number stay valid.
//
// All sampling is driven by an injected Rng; a fixed dataset seed gives
// identical 80:10:10 splits on every run.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/box.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace upaq::data {

struct LidarPoint {
  float x = 0.0f, y = 0.0f, z = 0.0f;
  float intensity = 0.0f;
};

/// Camera-path conditions carried on the scene (night / fog rendering).
/// Defaults reproduce the historical render bit-for-bit.
struct RenderConditions {
  float ambient = 1.0f;   ///< global illumination multiplier (night < 1)
  float contrast = 1.0f;  ///< contrast around the ambient mid-grey
  float noise_sd = 0.02f; ///< sensor noise sigma (low light is noisier)
};

struct Scene {
  std::vector<eval::Box3D> objects;  ///< ground truth (labels: eval::kClass*)
  std::vector<LidarPoint> points;    ///< simulated LiDAR return
  RenderConditions render;           ///< camera conditions for this scene
};

struct SceneConfig {
  // Detection range (vehicle frame: x forward, y left, z up; sensor at origin).
  float x_min = 2.0f, x_max = 46.0f;
  float y_min = -22.0f, y_max = 22.0f;
  int min_cars = 1, max_cars = 6;
  // Car size distribution (KITTI car means with mild spread).
  float car_length_mean = 4.2f, car_length_sd = 0.35f;
  float car_width_mean = 1.8f, car_width_sd = 0.12f;
  float car_height_mean = 1.55f, car_height_sd = 0.1f;
  // LiDAR point budget for a car at 10 m; decays with 1/r. Smaller classes
  // scale by visible surface area relative to the mean car.
  float points_at_10m = 220.0f;
  float point_noise_sd = 0.035f;  ///< metres, per-coordinate
  int ground_clutter_points = 260;
  int distractor_clusters = 3;  ///< bush/pole-like clusters (hard negatives)

  // --- Multi-class world (inert at 0: no Rng draws, no objects) ---------
  int min_pedestrians = 0, max_pedestrians = 0;
  int min_cyclists = 0, max_cyclists = 0;
  // Pedestrian size distribution (KITTI ped means; BEV footprint is square).
  float ped_extent_mean = 0.6f, ped_extent_sd = 0.08f;
  float ped_height_mean = 1.7f, ped_height_sd = 0.12f;
  // Cyclist size distribution.
  float cyclist_length_mean = 1.76f, cyclist_length_sd = 0.15f;
  float cyclist_width_mean = 0.6f, cyclist_width_sd = 0.06f;
  float cyclist_height_mean = 1.73f, cyclist_height_sd = 0.1f;

  // --- Corruption / stress knobs (all inert at defaults) ----------------
  /// Multiplier on the placement separation margin. 1.0 keeps the clean
  /// road; jam scenes use < 1 to pack objects toward near-contact.
  float spacing_factor = 1.0f;
  /// Angular shadow occlusion: points strictly behind a foreground object
  /// (greater range, inside its azimuth shadow cone) survive only with
  /// probability `occlusion_keep`. Points at or in front of the occluder's
  /// far edge are never touched.
  bool occlusion = false;
  float occlusion_keep = 0.1f;
  /// Uniform random LiDAR dropout: each point is removed independently with
  /// this probability (beam misfires, wet-road absorption).
  float dropout_fraction = 0.0f;
  /// Range-dependent Gaussian jitter: extra per-coordinate noise with sigma
  /// `point_noise_sd * range_noise_scale * (range / 10 m)`. 0 disables.
  float range_noise_scale = 0.0f;

  /// Floor on per-object LiDAR returns. The 1/r budget and the surface-area
  /// scaling both shrink the count; without a floor a distant pedestrian
  /// rounds to 0 points and becomes an unlearnable ghost in the ground
  /// truth (regression-tested in tests/test_data.cpp).
  int min_object_points = 6;

  /// Camera render conditions, copied onto every generated scene.
  RenderConditions render;
};

class SceneGenerator {
 public:
  explicit SceneGenerator(SceneConfig cfg = {}) : cfg_(cfg) {}

  /// Draws one scene: non-overlapping object placement, LiDAR simulation,
  /// then the enabled corruption passes (range noise, occlusion, dropout —
  /// in that order, each a pure filter/perturbation of the clean scene).
  Scene sample(Rng& rng) const;

  const SceneConfig& config() const { return cfg_; }

 private:
  void place_cars(Scene& scene, Rng& rng) const;
  void place_pedestrians(Scene& scene, Rng& rng) const;
  void place_cyclists(Scene& scene, Rng& rng) const;
  void simulate_lidar(Scene& scene, Rng& rng) const;
  void apply_range_noise(Scene& scene, Rng& rng) const;
  void apply_occlusion(Scene& scene, Rng& rng) const;
  void apply_dropout(Scene& scene, Rng& rng) const;
  SceneConfig cfg_;
};

/// Pinhole camera for the SMOKE pipeline. The camera sits at the origin
/// looking along +x; u grows to the right (negative y), v grows downward
/// (negative z). Depth is the forward distance x.
struct Camera {
  float fx = 120.0f, fy = 120.0f;
  float cx = 64.0f, cy = 52.0f;
  int width = 128, height = 96;
  float height_above_ground = 1.6f;  ///< camera z in the vehicle frame

  /// Projects a vehicle-frame point; returns false when behind the camera.
  bool project(float x, float y, float z, float& u, float& v) const;
  /// Inverse of project at a known depth (the SMOKE uplift).
  void unproject(float u, float v, float depth, float& x, float& y, float& z) const;
};

/// Renders the scene into a (3, H, W) image in [0,1]: sky/road background,
/// shaded perspective box silhouettes (intensity falls with distance, with
/// per-object albedo jitter so apparent brightness is an imperfect depth
/// cue), plus sensor noise. Honors the scene's RenderConditions: ambient /
/// contrast rescale the lit image (night), noise_sd sets the sensor noise.
Tensor render_camera(const Scene& scene, const Camera& cam, Rng& rng);

/// A reproducible dataset with the paper's 80:10:10 split.
struct Dataset {
  std::vector<Scene> train, val, test;
};

Dataset make_dataset(int scene_count, std::uint64_t seed,
                     const SceneConfig& cfg = {});

}  // namespace upaq::data
