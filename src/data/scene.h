// Synthetic KITTI-like scenes: the dataset substitute.
//
// Each scene is a ground plane with 1..N car-sized boxes at random poses
// inside the detection range, observed by (a) a simulated LiDAR that samples
// the box faces visible from the sensor plus ground clutter and distractor
// objects, and (b) a pinhole camera rendering shaded box silhouettes with
// perspective scaling. Ground truth is the exact 9-DoF box list, so the
// KITTI-style AP evaluation runs unchanged. All sampling is driven by an
// injected Rng; a fixed dataset seed gives identical 80:10:10 splits on
// every run.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/box.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace upaq::data {

struct LidarPoint {
  float x = 0.0f, y = 0.0f, z = 0.0f;
  float intensity = 0.0f;
};

struct Scene {
  std::vector<eval::Box3D> objects;  ///< ground truth (label 0 = car)
  std::vector<LidarPoint> points;    ///< simulated LiDAR return
};

struct SceneConfig {
  // Detection range (vehicle frame: x forward, y left, z up; sensor at origin).
  float x_min = 2.0f, x_max = 46.0f;
  float y_min = -22.0f, y_max = 22.0f;
  int min_cars = 1, max_cars = 6;
  // Car size distribution (KITTI car means with mild spread).
  float car_length_mean = 4.2f, car_length_sd = 0.35f;
  float car_width_mean = 1.8f, car_width_sd = 0.12f;
  float car_height_mean = 1.55f, car_height_sd = 0.1f;
  // LiDAR point budget for a car at 10 m; decays with 1/r.
  float points_at_10m = 220.0f;
  float point_noise_sd = 0.035f;  ///< metres, per-coordinate
  int ground_clutter_points = 260;
  int distractor_clusters = 3;  ///< bush/pole-like clusters (hard negatives)
};

class SceneGenerator {
 public:
  explicit SceneGenerator(SceneConfig cfg = {}) : cfg_(cfg) {}

  /// Draws one scene: non-overlapping car placement, LiDAR simulation.
  Scene sample(Rng& rng) const;

  const SceneConfig& config() const { return cfg_; }

 private:
  void place_cars(Scene& scene, Rng& rng) const;
  void simulate_lidar(Scene& scene, Rng& rng) const;
  SceneConfig cfg_;
};

/// Pinhole camera for the SMOKE pipeline. The camera sits at the origin
/// looking along +x; u grows to the right (negative y), v grows downward
/// (negative z). Depth is the forward distance x.
struct Camera {
  float fx = 120.0f, fy = 120.0f;
  float cx = 64.0f, cy = 52.0f;
  int width = 128, height = 96;
  float height_above_ground = 1.6f;  ///< camera z in the vehicle frame

  /// Projects a vehicle-frame point; returns false when behind the camera.
  bool project(float x, float y, float z, float& u, float& v) const;
  /// Inverse of project at a known depth (the SMOKE uplift).
  void unproject(float u, float v, float depth, float& x, float& y, float& z) const;
};

/// Renders the scene into a (3, H, W) image in [0,1]: sky/road background,
/// shaded perspective car silhouettes (intensity falls with distance, with
/// per-car albedo jitter so apparent brightness is an imperfect depth cue),
/// plus sensor noise.
Tensor render_camera(const Scene& scene, const Camera& cam, Rng& rng);

/// A reproducible dataset with the paper's 80:10:10 split.
struct Dataset {
  std::vector<Scene> train, val, test;
};

Dataset make_dataset(int scene_count, std::uint64_t seed,
                     const SceneConfig& cfg = {});

}  // namespace upaq::data
