// Low-level numeric kernels: GEMM, im2col/col2im, softmax/sigmoid helpers.
//
// These are the primitives the NN layers are written against. They are plain
// functions over Tensor so the compression code can reuse them (e.g. the
// sparse-conv micro-benchmarks compare gemm-based dense conv with the
// zero-skipping path).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace upaq::ops {

/// C = A(mxk) * B(kxn); all matrices row-major 2-D tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C += alpha * A(mxk) * B(kxn) into a pre-allocated 2-D tensor. Dispatches
/// to the cache-blocked panel kernel (tensor/gemm_kernel.h) when A is dense
/// and to the zero-skipping row kernel when A is mostly zeros (pruned
/// weights). Either way the chunk decomposition depends only on the shapes,
/// so results are bitwise identical for every thread count.
void gemm_accumulate(const Tensor& a, const Tensor& b, Tensor& c, float alpha = 1.0f);

/// C += alpha * A(mxk) * B(nxk)^T — i.e. both operands are read row-wise.
/// Used by the conv backward weight-gradient GEMM so the column matrix never
/// has to be transposed/copied. Blocked panel kernel; the B pack absorbs the
/// transpose. Same stripe-parallel determinism as gemm_accumulate.
void gemm_nt_accumulate(const Tensor& a, const Tensor& b, Tensor& c,
                        float alpha = 1.0f);

/// im2col for NCHW input: input (C,H,W) -> columns (C*kh*kw, out_h*out_w).
Tensor im2col(const Tensor& input, int kh, int kw, int stride, int pad);

/// Batch-offset view variant: lowers item `batch` of a (N,C,H,W) tensor
/// without copying it out first (the (C,H,W) slice is contiguous in NCHW).
Tensor im2col(const Tensor& input, std::int64_t batch, int kh, int kw,
              int stride, int pad);

/// Raw-buffer im2col into a caller-provided (c*kh*kw, out_h*out_w) buffer —
/// the workspace-backed variant the conv forward path uses so steady-state
/// inference never allocates a column Tensor. Identical fill (and prof
/// accounting) to the Tensor-returning overloads.
void im2col_into(const float* in, std::int64_t c, std::int64_t h,
                 std::int64_t w, int kh, int kw, int stride, int pad,
                 float* out);

/// col2im: inverse scatter-add of im2col, columns (C*kh*kw, out_h*out_w)
/// -> (C,H,W). Used by the conv backward pass.
Tensor col2im(const Tensor& cols, std::int64_t channels, std::int64_t height,
              std::int64_t width, int kh, int kw, int stride, int pad);

/// Output spatial size of a convolution: floor((in + 2p - k)/s) + 1.
std::int64_t conv_out_size(std::int64_t in, int k, int stride, int pad);

/// Numerically-stable sigmoid.
float sigmoid(float x);

/// In-place sigmoid over a tensor.
void sigmoid_(Tensor& t);

/// Numerically-stable in-place softmax over the last dimension of a 2-D tensor.
void softmax_rows_(Tensor& t);

/// Elementwise maximum against a scalar (ReLU when floor = 0).
void clamp_min_(Tensor& t, float floor);

}  // namespace upaq::ops
