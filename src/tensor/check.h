// Contract-checking helpers used across the UPAQ codebase.
//
// UPAQ_CHECK is used for preconditions on public APIs (throws
// std::invalid_argument so callers can recover / tests can assert), while
// UPAQ_ASSERT marks internal invariants (throws std::logic_error: if one
// fires, the library itself has a bug).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace upaq {

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "UPAQ_CHECK") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace upaq

#define UPAQ_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::upaq::detail::throw_check_failure("UPAQ_CHECK", #cond, __FILE__,   \
                                          __LINE__, (msg));                \
    }                                                                      \
  } while (false)

#define UPAQ_ASSERT(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::upaq::detail::throw_check_failure("UPAQ_ASSERT", #cond, __FILE__,  \
                                          __LINE__, (msg));                \
    }                                                                      \
  } while (false)
