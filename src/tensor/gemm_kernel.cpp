#include "tensor/gemm_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "parallel/thread_pool.h"
#include "prof/prof.h"
#include "tensor/workspace.h"

namespace upaq::gemm {

namespace {

// Same below-this-runs-serial gating as tensor/ops.cpp: dispatch cost beats
// the win for tiny products, and gating on the (shape-only) work size keeps
// serial and parallel arithmetic identical.
constexpr std::int64_t kMinParallelWork = 1 << 15;
constexpr std::int64_t kSparseRowGrain = 8;

std::int64_t round_up(std::int64_t v, std::int64_t m) {
  return (v + m - 1) / m * m;
}

/// MR x NR register micro-tile over one KC slab, written to `acc`.
///
/// The accumulators must be one vector register per C row (broadcast A
/// element x contiguous B row, the classic outer-product shape). Left to
/// its own devices the auto-vectorizer instead vectorizes over the A
/// panel's contiguous r axis and drowns the FMAs in cross-lane shuffles,
/// so on GNU compilers the shape is spelled out with vector extensions —
/// ISA-independent (the compiler lowers to whatever the target offers)
/// and exactly one kNR-wide lane group per C row.
#if defined(__GNUC__) || defined(__clang__)
typedef float vnr __attribute__((vector_size(kNR * sizeof(float))));
static_assert(kNR == 8, "micro-tile accumulator type assumes kNR == 8");

void micro_tile(std::int64_t kc, const float* __restrict__ ap,
                const float* __restrict__ bp, float* __restrict__ acc) {
  vnr t0{}, t1{}, t2{}, t3{}, t4{}, t5{};
  static_assert(kMR == 6, "accumulator count assumes kMR == 6");
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict__ a = ap + p * kMR;
    vnr b;
    __builtin_memcpy(&b, bp + p * kNR, sizeof(b));
    t0 += a[0] * b;
    t1 += a[1] * b;
    t2 += a[2] * b;
    t3 += a[3] * b;
    t4 += a[4] * b;
    t5 += a[5] * b;
  }
  const vnr t[kMR] = {t0, t1, t2, t3, t4, t5};
  __builtin_memcpy(acc, t, sizeof(t));
}
#else
void micro_tile(std::int64_t kc, const float* ap, const float* bp,
                float* acc) {
  float t[kMR * kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kMR;
    const float* b = bp + p * kNR;
    for (int r = 0; r < kMR; ++r) {
      const float ar = a[r];
      for (int j = 0; j < kNR; ++j) t[r * kNR + j] += ar * b[j];
    }
  }
  for (int i = 0; i < kMR * kNR; ++i) acc[i] = t[i];
}
#endif

/// Packs rows [0, m) x columns [pc, pc+kc) of row-major A into MR-row panels
/// at `dst` (column-major within a panel, rows beyond m zero-filled).
void pack_a_slab(float* dst, const float* a, std::int64_t m, std::int64_t k,
                 std::int64_t pc, std::int64_t kc, std::int64_t mpad) {
  for (std::int64_t ip = 0; ip < mpad / kMR; ++ip) {
    float* panel = dst + ip * kMR * kc;
    for (std::int64_t j = 0; j < kc; ++j) {
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t row = ip * kMR + r;
        panel[j * kMR + r] = row < m ? a[row * k + pc + j] : 0.0f;
      }
    }
  }
}

/// Packs a kc x nw B slab (columns [jc, jc+nw), k-rows [pc, pc+kc)) into
/// NR-column panels. BT = false reads row-major (k, n) B; BT = true reads
/// row-major (n, k) B as its transpose.
template <bool BT>
void pack_b_slab(float* dst, const float* b, std::int64_t k, std::int64_t n,
                 std::int64_t pc, std::int64_t kc, std::int64_t jc,
                 std::int64_t nw) {
  const std::int64_t jpanels = (nw + kNR - 1) / kNR;
  for (std::int64_t jp = 0; jp < jpanels; ++jp) {
    float* panel = dst + jp * kc * kNR;
    const std::int64_t jv = std::min(kNR, nw - jp * kNR);
    if constexpr (BT) {
      // Transposed read: column (jc + j) of B^T is row (jc + j) of B, so
      // each jr strand streams contiguously over p.
      for (std::int64_t jr = 0; jr < kNR; ++jr) {
        if (jr < jv) {
          const float* src = b + (jc + jp * kNR + jr) * k + pc;
          for (std::int64_t p = 0; p < kc; ++p) panel[p * kNR + jr] = src[p];
        } else {
          for (std::int64_t p = 0; p < kc; ++p) panel[p * kNR + jr] = 0.0f;
        }
      }
    } else {
      (void)k;
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * n + jc + jp * kNR;
        float* row = panel + p * kNR;
        for (std::int64_t jr = 0; jr < jv; ++jr) row[jr] = src[jr];
        for (std::int64_t jr = jv; jr < kNR; ++jr) row[jr] = 0.0f;
      }
    }
  }
}

/// Blocked panel kernel over a pre-packed A (`ap`, mpad x k in slab layout).
/// Parallel grain: one kNC-column stripe per chunk — stripes own disjoint C
/// columns and accumulate KC slabs in ascending k order, so the result is a
/// pure function of (shapes, values), never the thread count.
template <bool BT>
void run_blocked(const float* ap, std::int64_t m, std::int64_t k,
                 const float* b, float* c, std::int64_t n, float alpha) {
  const std::int64_t mpad = round_up(m, kMR);
  const std::int64_t row_panels = mpad / kMR;
  const std::int64_t stripes = (n + kNC - 1) / kNC;
  auto stripe_body = [&](std::int64_t s0, std::int64_t s1) {
    workspace::Scope ws;
    float* bp = ws.floats(kKC * kNC);
    for (std::int64_t s = s0; s < s1; ++s) {
      const std::int64_t jc = s * kNC;
      const std::int64_t nw = std::min(kNC, n - jc);
      const std::int64_t jpanels = (nw + kNR - 1) / kNR;
      for (std::int64_t pc = 0; pc < k; pc += kKC) {
        const std::int64_t kc = std::min(kKC, k - pc);
        pack_b_slab<BT>(bp, b, k, n, pc, kc, jc, nw);
        const float* aslab = ap + mpad * pc;
        for (std::int64_t jp = 0; jp < jpanels; ++jp) {
          const std::int64_t jv = std::min(kNR, nw - jp * kNR);
          for (std::int64_t ip = 0; ip < row_panels; ++ip) {
            float acc[kMR * kNR] = {};
            micro_tile(kc, aslab + ip * kMR * kc, bp + jp * kc * kNR, acc);
            const std::int64_t rv = std::min(kMR, m - ip * kMR);
            for (std::int64_t r = 0; r < rv; ++r) {
              float* crow = c + (ip * kMR + r) * n + jc + jp * kNR;
              for (std::int64_t j = 0; j < jv; ++j)
                crow[j] += alpha * acc[r * kNR + j];
            }
          }
        }
      }
    }
  };
  if (m * k * n < kMinParallelWork) {
    stripe_body(0, stripes);
  } else {
    parallel::parallel_for(0, stripes, 1, stripe_body);
  }
}

/// Zero-skipping row kernel (the pre-blocking i-k-j loop): per-element skips
/// make pattern-pruned weight rows cheap, which dense panel math cannot do.
void run_rowskip(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, float alpha) {
  auto rows = [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = alpha * a[i * k + kk];
        if (av == 0.0f) continue;  // free zero-skipping for pruned rows
        const float* brow = b + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kMinParallelWork) {
    rows(0, m);
  } else {
    parallel::parallel_for(0, m, kSparseRowGrain, rows);
  }
}

bool mostly_zero(const float* a, std::int64_t count) {
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < count; ++i) zeros += a[i] == 0.0f;
  return static_cast<double>(zeros) >
         kSparseZeroFraction * static_cast<double>(count);
}

void count_call(std::int64_t m, std::int64_t k, std::int64_t n) {
  prof::add(prof::Counter::kGemmFlops,
            static_cast<std::uint64_t>(2 * m * k * n));
  prof::add(prof::Counter::kGemmKernelCalls, 1);
}

}  // namespace

PackedA pack_a(const float* a, std::int64_t m, std::int64_t k) {
  PackedA p;
  p.m = m;
  p.k = k;
  p.sparse = mostly_zero(a, m * k);
  if (p.sparse) {
    p.data.assign(a, a + m * k);
    return p;
  }
  const std::int64_t mpad = round_up(m, kMR);
  p.data.assign(static_cast<std::size_t>(mpad * k), 0.0f);
  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    pack_a_slab(p.data.data() + mpad * pc, a, m, k, pc, kc, mpad);
  }
  return p;
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float alpha) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  count_call(m, k, n);
  if (mostly_zero(a, m * k)) {
    run_rowskip(a, b, c, m, k, n, alpha);
    return;
  }
  workspace::Scope ws;
  const std::int64_t mpad = round_up(m, kMR);
  float* ap = ws.floats(mpad * k);
  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    pack_a_slab(ap + mpad * pc, a, m, k, pc, kc, mpad);
  }
  run_blocked<false>(ap, m, k, b, c, n, alpha);
}

void gemm_packed(const PackedA& a, const float* b, float* c, std::int64_t n,
                 float alpha) {
  if (a.m <= 0 || a.k <= 0 || n <= 0) return;
  count_call(a.m, a.k, n);
  if (a.sparse) {
    run_rowskip(a.data.data(), b, c, a.m, a.k, n, alpha);
    return;
  }
  run_blocked<false>(a.data.data(), a.m, a.k, b, c, n, alpha);
}

void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float alpha) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  count_call(m, k, n);
  workspace::Scope ws;
  const std::int64_t mpad = round_up(m, kMR);
  float* ap = ws.floats(mpad * k);
  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    pack_a_slab(ap + mpad * pc, a, m, k, pc, kc, mpad);
  }
  run_blocked<true>(ap, m, k, b, c, n, alpha);
}

void s8_segment_accumulate(const std::int32_t* cols, const std::int32_t* codes,
                           std::int64_t len, const std::int8_t* qx,
                           std::int64_t ldq, std::int64_t j0, std::int64_t nb,
                           std::int32_t* acc) {
  for (std::int64_t e = 0; e < len; ++e) {
    const std::int32_t w = codes[e];
    const std::int8_t* brow = qx + static_cast<std::int64_t>(cols[e]) * ldq + j0;
    for (std::int64_t j = 0; j < nb; ++j)
      acc[j] += w * static_cast<std::int32_t>(brow[j]);
  }
}

// ------------------------------------------------------- int8 panel kernels

// Requantization is contractually one float multiply then one float add per
// element (two roundings). This TU compiles with -march=native where the
// compiler may contract a visible mul+add pair into a single-rounding FMA —
// and it is free to do so in one code path (say the vector flush) but not
// another (a scalar tail), which would break the bitwise equivalence between
// the segment and panel paths. The empty asm pins the product to a register
// between the two operations, making contraction impossible everywhere, so
// every integer path requantizes with the exact same two roundings.
#if defined(__GNUC__) || defined(__clang__)
#if defined(__x86_64__) || defined(__i386__)
#define UPAQ_NO_CONTRACT(v) asm("" : "+x"(v))
#else
#define UPAQ_NO_CONTRACT(v) asm("" : "+g"(v))
#endif
#else
#define UPAQ_NO_CONTRACT(v) (void)(v)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define UPAQ_S8_VEC 1
#if defined(__AVX2__)
#include <immintrin.h>
#endif
namespace {
typedef std::int8_t v8qi __attribute__((vector_size(8)));
typedef std::int32_t v8si __attribute__((vector_size(32)));
typedef float v8sf __attribute__((vector_size(32)));
static_assert(kQNR == 8, "int8 vector kernels assume kQNR == 8");

// The widening load goes through pmovsx intrinsics where available: GCC 12
// scalarizes narrow-to-wide __builtin_convertvector into per-lane
// sign-extends + inserts (~20 instructions for what vpmovsxbd does in one),
// which single-handedly erased the integer path's advantage. Both forms
// compute the same exact sign extension — intrinsics are a pure codegen fix.
#if defined(__AVX2__)
inline v8si load_i8x8_as_i32(const std::int8_t* p) {
  return (v8si)_mm256_cvtepi8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}
#else
inline v8si load_i8x8_as_i32(const std::int8_t* p) {
  v8qi q;
  __builtin_memcpy(&q, p, sizeof(q));
  return __builtin_convertvector(q, v8si);
}
#endif
}  // namespace
#endif

void s8_fused_segment(const std::int32_t* cols, const std::int32_t* codes,
                      std::int64_t len, const std::int8_t* qx, std::int64_t ldq,
                      std::int64_t j0, std::int64_t nb, float m, float* yb) {
  // Weight codes can be up to 16 bits here, so the products use int32 math
  // (the int16 pair trick is reserved for the <= 8-bit panel micro-kernel).
  const std::int32_t w0 = codes[0];
  const std::int8_t* b0 = qx + static_cast<std::int64_t>(cols[0]) * ldq + j0;
  const std::int32_t w1 = len > 1 ? codes[1] : 0;
  const std::int8_t* b1 =
      len > 1 ? qx + static_cast<std::int64_t>(cols[1]) * ldq + j0 : b0;
  const std::int32_t w2 = len > 2 ? codes[2] : 0;
  const std::int8_t* b2 =
      len > 2 ? qx + static_cast<std::int64_t>(cols[2]) * ldq + j0 : b0;
  std::int64_t j = 0;
#ifdef UPAQ_S8_VEC
  for (; j + 8 <= nb; j += 8) {
    v8si s = w0 * load_i8x8_as_i32(b0 + j);
    if (len > 1) s += w1 * load_i8x8_as_i32(b1 + j);
    if (len > 2) s += w2 * load_i8x8_as_i32(b2 + j);
    v8sf t = m * __builtin_convertvector(s, v8sf);
    UPAQ_NO_CONTRACT(t);
    v8sf y;
    __builtin_memcpy(&y, yb + j, sizeof(y));
    y += t;
    __builtin_memcpy(yb + j, &y, sizeof(y));
  }
#endif
  for (; j < nb; ++j) {
    std::int32_t s = w0 * static_cast<std::int32_t>(b0[j]);
    if (len > 1) s += w1 * static_cast<std::int32_t>(b1[j]);
    if (len > 2) s += w2 * static_cast<std::int32_t>(b2[j]);
    float t = m * static_cast<float>(s);
    UPAQ_NO_CONTRACT(t);
    yb[j] += t;
  }
}

void s8_requant_add(const std::int32_t* acc, std::int64_t nb, float m,
                    float* yb) {
  std::int64_t j = 0;
#ifdef UPAQ_S8_VEC
  for (; j + 8 <= nb; j += 8) {
    v8si s;
    __builtin_memcpy(&s, acc + j, sizeof(s));
    v8sf t = m * __builtin_convertvector(s, v8sf);
    UPAQ_NO_CONTRACT(t);
    v8sf y;
    __builtin_memcpy(&y, yb + j, sizeof(y));
    y += t;
    __builtin_memcpy(yb + j, &y, sizeof(y));
  }
#endif
  for (; j < nb; ++j) {
    float t = m * static_cast<float>(acc[j]);
    UPAQ_NO_CONTRACT(t);
    yb[j] += t;
  }
}

#if defined(UPAQ_S8_VEC) && defined(__AVX2__)
namespace {

/// One (row, 16-column) output block of the sub-byte segment GEMM: the two
/// 8-lane float accumulators hold the output across ALL of the row's
/// segments (bias fill in registers, one store at the end), and each entry
/// pair multiplies via vpmaddubsw as |w| x sign-transferred activations:
///   sign_epi8 moves the weight signs onto the activation bytes (activation
///   codes never reach -128 — s8_quantize clamps to +/-(2^(b-1)-1) <= 127 —
///   so the sign transfer is exact), then maddubs(|w| bytes, +/-x bytes)
///   yields int16 pair sums w0*x0 + w1*x1 with |sum| <= 2*127^2 < 2^15.
/// Pair sums widen to int32 per segment, so every integer quantity is exact,
/// and the per-element float sequence (bias, then one mul+add per segment in
/// ascending order, contraction pinned) is identical to the generic path —
/// the fast path is bitwise equivalent, only faster.
void s8_row_block16(const std::int32_t* cols, const std::int32_t* codes,
                    const QSegment* segs, std::int64_t s0, std::int64_t s1,
                    const std::int8_t* qx, float sx, std::int64_t n,
                    std::int64_t j0, float bias_v, float* yb) {
  __m256 y0 = _mm256_set1_ps(bias_v);
  __m256 y1 = y0;
  for (std::int64_t si = s0; si < s1; ++si) {
    const QSegment& seg = segs[si];
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (std::int64_t e = seg.begin; e < seg.end; e += 2) {
      const std::int32_t w0 = codes[e];
      const bool has2 = e + 1 < seg.end;
      const std::int32_t w1 = has2 ? codes[e + 1] : 0;
      const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          qx + static_cast<std::int64_t>(cols[e]) * n + j0));
      const __m128i r1 =
          has2 ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                     qx + static_cast<std::int64_t>(cols[e + 1]) * n + j0))
               : _mm_setzero_si128();
      const __m256i x_il =
          _mm256_set_m128i(_mm_unpackhi_epi8(r0, r1), _mm_unpacklo_epi8(r0, r1));
      const int s0b = w0 < 0 ? 0xFF : (w0 > 0 ? 1 : 0);
      const int s1b = w1 < 0 ? 0xFF : (w1 > 0 ? 1 : 0);
      const __m256i wsgn =
          _mm256_set1_epi16(static_cast<short>((s1b << 8) | s0b));
      const __m256i uabs = _mm256_set1_epi16(static_cast<short>(
          ((w1 < 0 ? -w1 : w1) << 8) | (w0 < 0 ? -w0 : w0)));
      const __m256i p =
          _mm256_maddubs_epi16(uabs, _mm256_sign_epi8(x_il, wsgn));
      acc_lo = _mm256_add_epi32(
          acc_lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p)));
      acc_hi = _mm256_add_epi32(
          acc_hi, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(p, 1)));
    }
    const float m_ = seg.scale * sx;
    const __m256 mv = _mm256_set1_ps(m_);
    __m256 t0 = _mm256_mul_ps(mv, _mm256_cvtepi32_ps(acc_lo));
    UPAQ_NO_CONTRACT(t0);
    y0 = _mm256_add_ps(y0, t0);
    __m256 t1 = _mm256_mul_ps(mv, _mm256_cvtepi32_ps(acc_hi));
    UPAQ_NO_CONTRACT(t1);
    y1 = _mm256_add_ps(y1, t1);
  }
  _mm256_storeu_ps(yb, y0);
  _mm256_storeu_ps(yb + 8, y1);
}

}  // namespace
#endif  // UPAQ_S8_VEC && __AVX2__

void s8_gemm_segments(const std::int32_t* cols, const std::int32_t* codes,
                      const QSegment* segs, const std::int64_t* row_segs,
                      std::int64_t rows, std::int64_t k, const std::int8_t* qx,
                      float sx, std::int64_t n, const float* bias, float* y,
                      bool codes_fit_i8) {
  constexpr std::int64_t kRowGrainI8 = 8;
#if defined(UPAQ_S8_VEC) && defined(__AVX2__)
  if (codes_fit_i8) {
    auto row_block = [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t r = r0; r < r1; ++r) {
        float* yrow = y + r * n;
        const float bv = bias != nullptr ? bias[r] : 0.0f;
        std::int64_t j0 = 0;
        for (; j0 + 16 <= n; j0 += 16)
          s8_row_block16(cols, codes, segs, row_segs[r], row_segs[r + 1], qx,
                         sx, n, j0, bv, yrow + j0);
        if (j0 < n) {
          // Column tail (< 16): the scalar-order fused kernels replay the
          // same bias-then-segments element sequence.
          const std::int64_t nb = n - j0;
          std::fill(yrow + j0, yrow + n, bv);
          std::int32_t iacc[16];
          for (std::int64_t si = row_segs[r]; si < row_segs[r + 1]; ++si) {
            const QSegment& seg = segs[si];
            const std::int64_t len = seg.end - seg.begin;
            const float m = seg.scale * sx;
            if (len <= 3) {
              s8_fused_segment(cols + seg.begin, codes + seg.begin, len, qx, n,
                               j0, nb, m, yrow + j0);
            } else {
              std::fill(iacc, iacc + nb, 0);
              s8_segment_accumulate(cols + seg.begin, codes + seg.begin, len,
                                    qx, n, j0, nb, iacc);
              s8_requant_add(iacc, nb, m, yrow + j0);
            }
          }
        }
      }
    };
    if (rows * k * n < kMinParallelWork) {
      row_block(0, rows);
    } else {
      parallel::parallel_for(0, rows, kRowGrainI8, row_block);
    }
    return;
  }
#else
  (void)codes_fit_i8;
  (void)kRowGrainI8;
#endif
  // Column block of the generic (len >= 4) path: the int32 accumulator
  // covers kColBlock outputs (2 KiB, L1-resident) instead of the whole
  // feature map; the y block likewise stays L1-hot across a row's segments.
  // Blocking is bitwise-free: int32 segment sums are exact and the
  // per-element requantization order (segment order) does not depend on the
  // column decomposition.
  constexpr std::int64_t kColBlock = 512;
  constexpr std::int64_t kRowGrain = 8;
  auto row_block = [&](std::int64_t r0, std::int64_t r1) {
    workspace::Scope ws;
    std::int32_t* iacc = ws.i32(std::min(n, kColBlock));
    for (std::int64_t r = r0; r < r1; ++r) {
      float* yrow = y + r * n;
      std::fill(yrow, yrow + n, bias != nullptr ? bias[r] : 0.0f);
      for (std::int64_t j0 = 0; j0 < n; j0 += kColBlock) {
        const std::int64_t nb = std::min(kColBlock, n - j0);
        for (std::int64_t si = row_segs[r]; si < row_segs[r + 1]; ++si) {
          const QSegment& seg = segs[si];
          const std::int64_t len = seg.end - seg.begin;
          const float m = seg.scale * sx;
          const std::int32_t* wc = codes + seg.begin;
          const std::int32_t* cc = cols + seg.begin;
          float* yb = yrow + j0;
          // UPAQ patterns keep 2 (HCK) or 3 (LCK) weights per kernel, so
          // almost every segment is tiny: the fused kernels fold the integer
          // sum and the requantization into one pass over the columns.
          if (len <= 3) {
            s8_fused_segment(cc, wc, len, qx, n, j0, nb, m, yb);
          } else {
            std::fill(iacc, iacc + nb, 0);
            s8_segment_accumulate(cc, wc, len, qx, n, j0, nb, iacc);
            s8_requant_add(iacc, nb, m, yb);
          }
        }
      }
    }
  };
  if (rows * k * n < kMinParallelWork) {
    row_block(0, rows);
  } else {
    parallel::parallel_for(0, rows, kRowGrain, row_block);
  }
}

void q8_pack_a(const std::int8_t* a, std::int64_t m, std::int64_t k,
               std::int64_t slab, QPanelA& out) {
  out.m = m;
  out.k = k;
  out.slab = slab;
  const std::int64_t mpad = round_up(m, kQMR);
  // Slabs are padded to an even k depth for the pair-interleaved layout
  // (the phantom position holds code 0, an exact integer no-op).
  std::int64_t kpad = 0;
  for (std::int64_t pc = 0; pc < k; pc += slab)
    kpad += round_up(std::min(slab, k - pc), 2);
  // +4 trailing bytes: the 16-byte pair loads of the micro-kernel read past
  // the final 2*kQMR-byte pair; the tail lanes land in unused permute slots.
  out.data.assign(static_cast<std::size_t>(mpad * kpad + 4), 0);
  std::int8_t* dst = out.data.data();
  for (std::int64_t pc = 0; pc < k; pc += slab) {
    const std::int64_t kc = std::min(slab, k - pc);
    const std::int64_t kcp = round_up(kc, 2);
    for (std::int64_t ip = 0; ip < mpad / kQMR; ++ip) {
      std::int8_t* panel = dst + ip * kQMR * kcp;
      for (std::int64_t j = 0; j < kc; ++j)
        for (std::int64_t r = 0; r < kQMR; ++r) {
          const std::int64_t row = ip * kQMR + r;
          panel[(j >> 1) * 2 * kQMR + 2 * r + (j & 1)] =
              row < m ? a[row * k + pc + j] : 0;
        }
    }
    dst += mpad * kcp;
  }
}

void q4_pack_a(const std::int8_t* a, std::int64_t m, std::int64_t k,
               std::int64_t slab, Q4PanelA& out) {
  out.m = m;
  out.k = k;
  out.slab = slab;
  const std::int64_t mpad = round_up(m, kQMR);
  const std::int64_t row_panels = mpad / kQMR;
  std::int64_t total = 0;
  for (std::int64_t pc = 0; pc < k; pc += slab) {
    const std::int64_t kc = std::min(slab, k - pc);
    total += row_panels * ((kc + 3) / 4) * (2 * kQMR);
  }
  // +4 trailing slack bytes: the micro-kernel's 16-byte quad loads read past
  // each 12-byte quad; the overhang lands in the unused row-6/7 permute
  // slots, and the global tail needs real readable bytes.
  out.data.assign(static_cast<std::size_t>(total + 4), 0);
  std::int8_t* dst = out.data.data();
  for (std::int64_t pc = 0; pc < k; pc += slab) {
    const std::int64_t kc = std::min(slab, k - pc);
    const std::int64_t qn = (kc + 3) / 4;
    for (std::int64_t ip = 0; ip < row_panels; ++ip) {
      std::int8_t* panel = dst + ip * qn * 2 * kQMR;
      for (std::int64_t q = 0; q < qn; ++q)
        for (std::int64_t r = 0; r < kQMR; ++r) {
          const std::int64_t row = ip * kQMR + r;
          for (int half = 0; half < 2; ++half) {
            // Biased nibbles u = code + 8 in [1, 15]; stored 0 marks padding
            // (phantom k positions and rows beyond m), which the kernel's
            // bias correction / padding rules turn into an exact no-op.
            const std::int64_t p0 = q * 4 + 2 * half;
            const auto nib = [&](std::int64_t p) -> int {
              if (row >= m || p >= kc) return 0;
              return static_cast<int>(a[row * k + pc + p]) + 8;
            };
            panel[q * 2 * kQMR + 2 * r + half] =
                static_cast<std::int8_t>(nib(p0) | (nib(p0 + 1) << 4));
          }
        }
    }
    dst += row_panels * qn * 2 * kQMR;
  }
}

namespace {

/// Packs a kc x nw int8 B slab (columns [jc, jc+nw), k-rows [pc, pc+kc))
/// into kQNR-column panels, zero-padded to the panel width. Adjacent k-rows
/// are pair-interleaved ([b(p,j), b(p+1,j)] contiguous per column) so the
/// micro-kernel's int16 multiply-add lanes line up with one plain load; an
/// odd kc gets a zero-filled phantom row (exact integer no-op).
void q8_pack_b_slab(std::int8_t* dst, const std::int8_t* b, std::int64_t n,
                    std::int64_t pc, std::int64_t kc, std::int64_t jc,
                    std::int64_t nw) {
  const std::int64_t jpanels = (nw + kQNR - 1) / kQNR;
  const std::int64_t kcp = round_up(kc, 2);
  for (std::int64_t jp = 0; jp < jpanels; ++jp) {
    std::int8_t* panel = dst + jp * kcp * kQNR;
    const std::int64_t jv = std::min(kQNR, nw - jp * kQNR);
    const std::int8_t* src0 = b + pc * n + jc + jp * kQNR;
#if defined(UPAQ_S8_VEC) && defined(__AVX2__)
    if (jv == kQNR) {
      // Full-width panel: interleave two 8-byte k-rows with one unpack
      // instead of 16 strided byte stores.
      for (std::int64_t p = 0; p + 1 < kc; p += 2) {
        const __m128i lo = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(src0 + p * n));
        const __m128i hi = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(src0 + (p + 1) * n));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(panel + (p >> 1) * 16),
                         _mm_unpacklo_epi8(lo, hi));
      }
      if (kc & 1) {  // odd tail k-row paired with a zero phantom row
        const __m128i lo = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(src0 + (kc - 1) * n));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(panel + (kc >> 1) * 16),
                         _mm_unpacklo_epi8(lo, _mm_setzero_si128()));
      }
      continue;
    }
#endif
    for (std::int64_t p = 0; p < kc; ++p) {
      const std::int8_t* src = src0 + p * n;
      std::int8_t* row = panel + (p >> 1) * 2 * kQNR + (p & 1);
      for (std::int64_t jr = 0; jr < jv; ++jr) row[2 * jr] = src[jr];
      for (std::int64_t jr = jv; jr < kQNR; ++jr) row[2 * jr] = 0;
    }
    if (kc & 1) {
      std::int8_t* row = panel + (kc >> 1) * 2 * kQNR + 1;
      for (std::int64_t jr = 0; jr < kQNR; ++jr) row[2 * jr] = 0;
    }
  }
}

#if defined(UPAQ_S8_VEC) && defined(__AVX2__)

/// kQMR x kQNR int8 micro-tile over one (ip, jp) pair of a slab, with the
/// panel's requantization schedule interleaved: integer products accumulate
/// in registers via vpmaddwd (int16 x int16 multiply with exact pairwise
/// int32 horizontal add — both operands are sign-extended int8, so every
/// product and pair sum is exact), and at each flush event the closing row's
/// accumulator is requantized into y with the same one-multiply-one-add
/// sequence as s8_requant_add. Events are (col, row) ascending, so per
/// output element the float operations replay the segment engine's order
/// exactly. Pairing is fixed to even panel positions (the pack layout);
/// segment boundaries at odd positions zero the partner lane instead of
/// re-aligning, so no product ever crosses a requant boundary.
void q8_micro_tile(const std::int8_t* __restrict__ ap,
                   const std::int8_t* __restrict__ bp, std::int64_t kc,
                   std::int64_t pc, const QFlush* ev, const QFlush* ev_end,
                   float sx, float* y, std::int64_t n, std::int64_t jcol,
                   std::int64_t jv, std::int64_t row_base, std::int64_t m) {
  v8si t0{}, t1{}, t2{}, t3{}, t4{}, t5{};
  static_assert(kQMR == 6, "accumulator count assumes kQMR == 6");
  const auto flush = [&](int r, float scale) {
    v8si acc{};
    switch (r) {
      case 0: acc = t0; t0 = v8si{}; break;
      case 1: acc = t1; t1 = v8si{}; break;
      case 2: acc = t2; t2 = v8si{}; break;
      case 3: acc = t3; t3 = v8si{}; break;
      case 4: acc = t4; t4 = v8si{}; break;
      default: acc = t5; t5 = v8si{}; break;
    }
    const float m_ = scale * sx;
    float* yb = y + (row_base + r) * n + jcol;
    if (jv == kQNR) {
      v8sf t = m_ * __builtin_convertvector(acc, v8sf);
      UPAQ_NO_CONTRACT(t);
      v8sf yv;
      __builtin_memcpy(&yv, yb, sizeof(yv));
      yv += t;
      __builtin_memcpy(yb, &yv, sizeof(yv));
    } else {
      for (std::int64_t j = 0; j < jv; ++j) {
        float t = m_ * static_cast<float>(acc[j]);
        UPAQ_NO_CONTRACT(t);
        yb[j] += t;
      }
    }
  };
  // One panel position p with its stored-pair partner lane zeroed: products
  // from the partner position contribute exactly 0, so half-pair steps at
  // segment boundaries stay on the vpmaddwd path.
  const auto step1 = [&](std::int64_t p) {
    const std::int64_t q = p >> 1;
    const __m256i bpair = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + q * 2 * kQNR)));
    const std::int8_t* a = ap + q * 2 * kQMR + (p & 1);
    const int odd = static_cast<int>(p & 1);
    const auto lane = [&](int r) {
      const std::int32_t v = a[2 * r];
      return _mm256_set1_epi32(odd ? (v << 16) : (v & 0xFFFF));
    };
    t0 += (v8si)_mm256_madd_epi16(lane(0), bpair);
    t1 += (v8si)_mm256_madd_epi16(lane(1), bpair);
    t2 += (v8si)_mm256_madd_epi16(lane(2), bpair);
    t3 += (v8si)_mm256_madd_epi16(lane(3), bpair);
    t4 += (v8si)_mm256_madd_epi16(lane(4), bpair);
    t5 += (v8si)_mm256_madd_epi16(lane(5), bpair);
  };
  std::int64_t c = 0;  // slab-local column
  while (true) {
    const std::int64_t stop =
        ev != ev_end ? std::min<std::int64_t>(ev->col - pc, kc) : kc;
    std::int64_t p = c;
    if (p < stop && (p & 1)) {  // odd head: partner belongs to the previous run
      step1(p);
      ++p;
    }
    for (; p + 1 < stop; p += 2) {
      const std::int64_t q = p >> 1;
      const __m256i bpair = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(bp + q * 2 * kQNR)));
      // 6 interleaved (a[p], a[p+1]) int8 pairs -> int16 pairs in permute
      // slots 0..5 (the 16-byte load's tail lands in the unused slots 6..7).
      const __m256i a_all = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(ap + q * 2 * kQMR)));
      t0 += (v8si)_mm256_madd_epi16(
          _mm256_permutevar8x32_epi32(a_all, _mm256_set1_epi32(0)), bpair);
      t1 += (v8si)_mm256_madd_epi16(
          _mm256_permutevar8x32_epi32(a_all, _mm256_set1_epi32(1)), bpair);
      t2 += (v8si)_mm256_madd_epi16(
          _mm256_permutevar8x32_epi32(a_all, _mm256_set1_epi32(2)), bpair);
      t3 += (v8si)_mm256_madd_epi16(
          _mm256_permutevar8x32_epi32(a_all, _mm256_set1_epi32(3)), bpair);
      t4 += (v8si)_mm256_madd_epi16(
          _mm256_permutevar8x32_epi32(a_all, _mm256_set1_epi32(4)), bpair);
      t5 += (v8si)_mm256_madd_epi16(
          _mm256_permutevar8x32_epi32(a_all, _mm256_set1_epi32(5)), bpair);
    }
    if (p < stop) {  // odd tail: partner belongs to the next run
      step1(p);
    }
    c = stop;
    // Uniform-group matrices emit one event per row at the same column in
    // row order (the event build sorts by (col, row)); requantize all six
    // accumulators in one straight-line pass instead of six dispatched
    // switches. The per-row float sequence is identical to flush().
    if (jv == kQNR && ev_end - ev >= kQMR && ev[0].col - pc == c &&
        ev[kQMR - 1].col == ev[0].col && ev[0].row == 0 &&
        ev[kQMR - 1].row == kQMR - 1) {
      const auto one = [&](v8si& t, int r) {
        const float m_ = ev[r].scale * sx;
        float* yb = y + (row_base + r) * n + jcol;
        v8sf tv = m_ * __builtin_convertvector(t, v8sf);
        UPAQ_NO_CONTRACT(tv);
        v8sf yv;
        __builtin_memcpy(&yv, yb, sizeof(yv));
        yv += tv;
        __builtin_memcpy(yb, &yv, sizeof(yv));
        t = v8si{};
      };
      one(t0, 0);
      one(t1, 1);
      one(t2, 2);
      one(t3, 3);
      one(t4, 4);
      one(t5, 5);
      ev += kQMR;
    }
    while (ev != ev_end && ev->col - pc == c) {
      flush(static_cast<int>(ev->row), ev->scale);
      ++ev;
    }
    if (c >= kc && (ev == ev_end || ev->col - pc > kc)) break;
  }
  (void)m;
}

#else  // !(UPAQ_S8_VEC && __AVX2__)

/// Portable scalar fallback with identical per-element arithmetic.
void q8_micro_tile(const std::int8_t* ap, const std::int8_t* bp,
                   std::int64_t kc, std::int64_t pc, const QFlush* ev,
                   const QFlush* ev_end, float sx, float* y, std::int64_t n,
                   std::int64_t jcol, std::int64_t jv, std::int64_t row_base,
                   std::int64_t m) {
  std::int32_t acc[kQMR][kQNR] = {};
  const auto flush = [&](int r, float scale) {
    const float m_ = scale * sx;
    float* yb = y + (row_base + r) * n + jcol;
    for (std::int64_t j = 0; j < jv; ++j) {
      float t = m_ * static_cast<float>(acc[r][j]);
      UPAQ_NO_CONTRACT(t);
      yb[j] += t;
    }
    for (std::int64_t j = 0; j < kQNR; ++j) acc[r][j] = 0;
  };
  std::int64_t c = 0;
  while (true) {
    const std::int64_t stop =
        ev != ev_end ? std::min<std::int64_t>(ev->col - pc, kc) : kc;
    for (std::int64_t p = c; p < stop; ++p) {
      // Pair-interleaved panel layout: position p of pair q = p/2 sits at
      // byte 2*r + (p & 1) (A) / 2*j + (p & 1) (B) within the pair.
      const std::int8_t* arow = ap + (p >> 1) * 2 * kQMR + (p & 1);
      const std::int8_t* brow = bp + (p >> 1) * 2 * kQNR + (p & 1);
      for (int r = 0; r < kQMR; ++r) {
        const std::int32_t w = arow[2 * r];
        for (std::int64_t j = 0; j < kQNR; ++j)
          acc[r][j] += w * static_cast<std::int32_t>(brow[2 * j]);
      }
    }
    c = stop;
    while (ev != ev_end && ev->col - pc == c) {
      flush(static_cast<int>(ev->row), ev->scale);
      ++ev;
    }
    if (c >= kc && (ev == ev_end || ev->col - pc > kc)) break;
  }
  (void)m;
}

#endif  // UPAQ_S8_VEC && __AVX2__

// ------------------------------------------------------- int4 panel kernels

/// Packs a kc x nw int8 B slab into quad-major kQNR-column panels for the
/// int4 kernel: each quad of 4 k-rows occupies 32 bytes, column j's dword
/// holding the 4 activation bytes x[p0..p3][j] (phantom rows zero-filled) —
/// exactly the shape vpmaddubsw consumes against a broadcast nibble row.
void q4_pack_b_slab(std::int8_t* dst, const std::int8_t* b, std::int64_t n,
                    std::int64_t pc, std::int64_t kc, std::int64_t jc,
                    std::int64_t nw) {
  const std::int64_t jpanels = (nw + kQNR - 1) / kQNR;
  const std::int64_t qn = (kc + 3) / 4;
  for (std::int64_t jp = 0; jp < jpanels; ++jp) {
    std::int8_t* panel = dst + jp * qn * 32;
    const std::int64_t jv = std::min(kQNR, nw - jp * kQNR);
    const std::int8_t* src0 = b + pc * n + jc + jp * kQNR;
    std::int64_t q0 = 0;
#if defined(UPAQ_S8_VEC) && defined(__AVX2__)
    if (jv == kQNR) {
      // Full-width panel, full quad: transpose 4 row loads into per-column
      // dwords with two unpack levels instead of 32 strided byte stores.
      for (; (q0 + 1) * 4 <= kc; ++q0) {
        const __m128i r0 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(src0 + (q0 * 4 + 0) * n));
        const __m128i r1 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(src0 + (q0 * 4 + 1) * n));
        const __m128i r2 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(src0 + (q0 * 4 + 2) * n));
        const __m128i r3 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(src0 + (q0 * 4 + 3) * n));
        const __m128i t01 = _mm_unpacklo_epi8(r0, r1);
        const __m128i t23 = _mm_unpacklo_epi8(r2, r3);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(panel + q0 * 32),
                         _mm_unpacklo_epi16(t01, t23));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(panel + q0 * 32 + 16),
                         _mm_unpackhi_epi16(t01, t23));
      }
    }
#endif
    for (std::int64_t q = q0; q < qn; ++q) {
      std::int8_t* qb = panel + q * 32;
      for (int p = 0; p < 4; ++p) {
        const std::int64_t row = q * 4 + p;
        const std::int8_t* src = src0 + row * n;
        for (std::int64_t j = 0; j < kQNR; ++j)
          qb[j * 4 + p] = (row < kc && j < jv) ? src[j] : 0;
      }
    }
  }
}

/// Per-column running activation sums of one (slab, column-panel):
/// ps[c * kQNR + j] = sum of x[pc + q][j] for q in [0, c), exact int32.
/// The int4 kernel's bias correction reads prefix differences from here.
void q4_prefix_sums(const std::int8_t* qx, std::int64_t n, std::int64_t pc,
                    std::int64_t kc, std::int64_t jc0, std::int64_t jv,
                    std::int32_t* ps) {
  for (std::int64_t j = 0; j < kQNR; ++j) ps[j] = 0;
  for (std::int64_t c = 0; c < kc; ++c) {
    const std::int8_t* src = qx + (pc + c) * n + jc0;
    const std::int32_t* prev = ps + c * kQNR;
    std::int32_t* cur = ps + (c + 1) * kQNR;
#ifdef UPAQ_S8_VEC
    if (jv == kQNR) {
      v8si x = load_i8x8_as_i32(src);
      v8si pv;
      __builtin_memcpy(&pv, prev, sizeof(pv));
      pv += x;
      __builtin_memcpy(cur, &pv, sizeof(pv));
      continue;
    }
#endif
    for (std::int64_t j = 0; j < kQNR; ++j)
      cur[j] = prev[j] + (j < jv ? static_cast<std::int32_t>(src[j]) : 0);
  }
}

#if defined(UPAQ_S8_VEC) && defined(__AVX2__)

/// Byte-lane mask covering quad-local positions [a, b) of a dword: partial
/// quads at segment boundaries zero the excluded positions on the broadcast
/// side, so each position is multiplied exactly once per flushed range.
inline std::uint32_t quad_mask(int a, int b) {
  const std::uint32_t hi =
      b >= 4 ? 0xFFFFFFFFu : ((1u << (8 * b)) - 1u);
  const std::uint32_t lo = a == 0 ? 0u : ((1u << (8 * a)) - 1u);
  return hi & ~lo;
}

/// kQMR x kQNR int4 micro-tile over one (ip, jp) pair of a slab. The panel
/// stores biased nibbles u = w + 8, expanded in-register (two mask/shift ops
/// + two unpacks turn one 16-byte load into per-row dwords of 4 biased
/// bytes) and multiplied unsigned via vpmaddubsw against the quad-major B
/// dwords: int16 pair sums |u * x| <= 2 * 15 * 127 < 2^15 (exact), vpmaddwd
/// against ones widens to exact int32 quad sums. At each flush event the
/// nibble bias is removed algebraically —
///   signed_sum = biased_sum - 8 * (prefix[c] - prefix[start[row]])
/// — all in int32, so the recovered sum is bit-for-bit the direct signed
/// dot product and the requant replay (one mul+add per segment, ascending
/// column order, contraction pinned) matches the segment and q8 paths.
void q4_micro_tile(const std::int8_t* __restrict__ ap,
                   const std::int8_t* __restrict__ bp, std::int64_t kc,
                   std::int64_t pc, const QFlush* ev, const QFlush* ev_end,
                   float sx, const std::int32_t* ps, float* y, std::int64_t n,
                   std::int64_t jcol, std::int64_t jv, std::int64_t row_base) {
  v8si t0{}, t1{}, t2{}, t3{}, t4{}, t5{};
  static_assert(kQMR == 6, "accumulator count assumes kQMR == 6");
  // Slab-local column where each row's open (unflushed) range began: the
  // lower end of the bias-correction prefix difference.
  std::int32_t start[kQMR] = {};
  const __m256i ones16 = _mm256_set1_epi16(1);
  const __m128i nib_mask = _mm_set1_epi8(0x0F);
  const auto quad_step = [&](std::int64_t q, std::uint32_t mask) {
    const __m128i raw = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(ap + q * 2 * kQMR));
    const __m128i lo = _mm_and_si128(raw, nib_mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(raw, 4), nib_mask);
    // After the unpacks, dword r of a_all holds row r's 4 biased bytes for
    // this quad (the 16-byte load's overhang lands in dwords 6..7, never
    // broadcast).
    __m256i a_all = _mm256_set_m128i(_mm_unpackhi_epi8(lo, hi),
                                     _mm_unpacklo_epi8(lo, hi));
    if (mask != 0xFFFFFFFFu)
      a_all = _mm256_and_si256(
          a_all, _mm256_set1_epi32(static_cast<std::int32_t>(mask)));
    const __m256i bq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + q * 32));
    const auto lane = [&](int r) {
      return _mm256_permutevar8x32_epi32(a_all, _mm256_set1_epi32(r));
    };
    t0 += (v8si)_mm256_madd_epi16(_mm256_maddubs_epi16(lane(0), bq), ones16);
    t1 += (v8si)_mm256_madd_epi16(_mm256_maddubs_epi16(lane(1), bq), ones16);
    t2 += (v8si)_mm256_madd_epi16(_mm256_maddubs_epi16(lane(2), bq), ones16);
    t3 += (v8si)_mm256_madd_epi16(_mm256_maddubs_epi16(lane(3), bq), ones16);
    t4 += (v8si)_mm256_madd_epi16(_mm256_maddubs_epi16(lane(4), bq), ones16);
    t5 += (v8si)_mm256_madd_epi16(_mm256_maddubs_epi16(lane(5), bq), ones16);
  };
  // Requantize row r's accumulator at slab-local column c: remove the nibble
  // bias over [start[r], c), then the contractual one-multiply-one-add.
  const auto flush = [&](int r, float scale, std::int64_t c) {
    v8si acc{};
    switch (r) {
      case 0: acc = t0; t0 = v8si{}; break;
      case 1: acc = t1; t1 = v8si{}; break;
      case 2: acc = t2; t2 = v8si{}; break;
      case 3: acc = t3; t3 = v8si{}; break;
      case 4: acc = t4; t4 = v8si{}; break;
      default: acc = t5; t5 = v8si{}; break;
    }
    const __m256i corr = _mm256_sub_epi32(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ps + c * kQNR)),
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ps + start[r] * kQNR)));
    const v8si s =
        (v8si)_mm256_sub_epi32((__m256i)acc, _mm256_slli_epi32(corr, 3));
    start[r] = static_cast<std::int32_t>(c);
    const float m_ = scale * sx;
    float* yb = y + (row_base + r) * n + jcol;
    if (jv == kQNR) {
      v8sf t = m_ * __builtin_convertvector(s, v8sf);
      UPAQ_NO_CONTRACT(t);
      v8sf yv;
      __builtin_memcpy(&yv, yb, sizeof(yv));
      yv += t;
      __builtin_memcpy(yb, &yv, sizeof(yv));
    } else {
      for (std::int64_t j = 0; j < jv; ++j) {
        float t = m_ * static_cast<float>(s[j]);
        UPAQ_NO_CONTRACT(t);
        yb[j] += t;
      }
    }
  };
  std::int64_t c = 0;  // slab-local column
  while (true) {
    const std::int64_t stop =
        ev != ev_end ? std::min<std::int64_t>(ev->col - pc, kc) : kc;
    std::int64_t p = c;
    if (p < stop && (p & 3)) {  // partial head quad
      const std::int64_t q = p >> 2;
      const std::int64_t b = std::min<std::int64_t>(stop - q * 4, 4);
      quad_step(q, quad_mask(static_cast<int>(p & 3), static_cast<int>(b)));
      p = q * 4 + b;
    }
    for (; p + 4 <= stop; p += 4) quad_step(p >> 2, 0xFFFFFFFFu);
    if (p < stop) {  // partial tail quad
      quad_step(p >> 2, quad_mask(0, static_cast<int>(stop - p)));
      p = stop;
    }
    c = stop;
    // Uniform-group batched flush (see q8_micro_tile): all six rows close at
    // this column in row order. Corrections stay per-row — rows whose groups
    // were all-zero emit no event and keep an older start[].
    if (jv == kQNR && ev_end - ev >= kQMR && ev[0].col - pc == c &&
        ev[kQMR - 1].col == ev[0].col && ev[0].row == 0 &&
        ev[kQMR - 1].row == kQMR - 1) {
      const __m256i pc_hi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ps + c * kQNR));
      const auto one = [&](v8si& t, int r) {
        const __m256i corr = _mm256_sub_epi32(
            pc_hi, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                       ps + start[r] * kQNR)));
        const v8si sv =
            (v8si)_mm256_sub_epi32((__m256i)t, _mm256_slli_epi32(corr, 3));
        start[r] = static_cast<std::int32_t>(c);
        const float m_ = ev[r].scale * sx;
        float* yb = y + (row_base + r) * n + jcol;
        v8sf tv = m_ * __builtin_convertvector(sv, v8sf);
        UPAQ_NO_CONTRACT(tv);
        v8sf yv;
        __builtin_memcpy(&yv, yb, sizeof(yv));
        yv += tv;
        __builtin_memcpy(yb, &yv, sizeof(yv));
        t = v8si{};
      };
      one(t0, 0);
      one(t1, 1);
      one(t2, 2);
      one(t3, 3);
      one(t4, 4);
      one(t5, 5);
      ev += kQMR;
    }
    while (ev != ev_end && ev->col - pc == c) {
      flush(static_cast<int>(ev->row), ev->scale, c);
      ++ev;
    }
    if (c >= kc && (ev == ev_end || ev->col - pc > kc)) break;
  }
}

#else  // !(UPAQ_S8_VEC && __AVX2__)

/// Portable scalar fallback: decodes nibbles to signed codes directly (no
/// bias, no correction). The direct signed sum equals the biased-and-
/// corrected sum exactly (both are the same exact int32), so the fallback is
/// bitwise identical to the vector kernel's outputs.
void q4_micro_tile(const std::int8_t* ap, const std::int8_t* bp,
                   std::int64_t kc, std::int64_t pc, const QFlush* ev,
                   const QFlush* ev_end, float sx, const std::int32_t* ps,
                   float* y, std::int64_t n, std::int64_t jcol,
                   std::int64_t jv, std::int64_t row_base) {
  (void)ps;
  std::int32_t acc[kQMR][kQNR] = {};
  const auto flush = [&](int r, float scale) {
    const float m_ = scale * sx;
    float* yb = y + (row_base + r) * n + jcol;
    for (std::int64_t j = 0; j < jv; ++j) {
      float t = m_ * static_cast<float>(acc[r][j]);
      UPAQ_NO_CONTRACT(t);
      yb[j] += t;
    }
    for (std::int64_t j = 0; j < kQNR; ++j) acc[r][j] = 0;
  };
  std::int64_t c = 0;
  while (true) {
    const std::int64_t stop =
        ev != ev_end ? std::min<std::int64_t>(ev->col - pc, kc) : kc;
    for (std::int64_t p = c; p < stop; ++p) {
      const std::int64_t q = p >> 2;
      const std::int8_t* arow = ap + q * 2 * kQMR;
      const std::int8_t* brow = bp + q * 32 + (p & 3);
      const int half = static_cast<int>((p >> 1) & 1);
      const int shift = static_cast<int>(p & 1) * 4;
      for (int r = 0; r < kQMR; ++r) {
        const int u = (static_cast<int>(
                           static_cast<std::uint8_t>(arow[2 * r + half])) >>
                       shift) &
                      0x0F;
        if (u == 0) continue;  // padding row / phantom position
        const std::int32_t w = u - 8;
        for (std::int64_t j = 0; j < kQNR; ++j)
          acc[r][j] += w * static_cast<std::int32_t>(brow[j * 4]);
      }
    }
    c = stop;
    while (ev != ev_end && ev->col - pc == c) {
      flush(static_cast<int>(ev->row), ev->scale);
      ++ev;
    }
    if (c >= kc && (ev == ev_end || ev->col - pc > kc)) break;
  }
}

#endif  // UPAQ_S8_VEC && __AVX2__

}  // namespace

void q8_gemm_panel(const QPanelA& w, const std::int8_t* qx, float sx,
                   std::int64_t n, float* y) {
  const std::int64_t m = w.m, k = w.k, slab = w.slab;
  const std::int64_t mpad = round_up(m, kQMR);
  const std::int64_t row_panels = mpad / kQMR;
  const std::int64_t stripes = (n + kQNC - 1) / kQNC;
  const std::int64_t slab_pad = round_up(slab, 2);
  auto stripe_body = [&](std::int64_t s0, std::int64_t s1) {
    workspace::Scope ws;
    std::int8_t* bp = ws.i8(slab_pad * kQNC);
    for (std::int64_t s = s0; s < s1; ++s) {
      const std::int64_t jc = s * kQNC;
      const std::int64_t nw = std::min(kQNC, n - jc);
      const std::int64_t jpanels = (nw + kQNR - 1) / kQNR;
      for (std::int64_t pc = 0; pc < k; pc += slab) {
        const std::int64_t kc = std::min(slab, k - pc);
        const std::int64_t kcp = round_up(kc, 2);
        q8_pack_b_slab(bp, qx, n, pc, kc, jc, nw);
        // All slabs before this one are full (kc == slab), so their padded
        // depth is slab_pad — mirrors q8_pack_a's running offset.
        const std::int8_t* aslab =
            w.data.data() + mpad * (pc / slab) * slab_pad;
        for (std::int64_t jp = 0; jp < jpanels; ++jp) {
          const std::int64_t jv = std::min(kQNR, nw - jp * kQNR);
          for (std::int64_t ip = 0; ip < row_panels; ++ip) {
            const auto& evs = w.events[static_cast<std::size_t>(ip)];
            // Events with col in (pc, pc + kc] fire inside this slab; slab
            // cuts are group boundaries, so no event range straddles slabs.
            const QFlush* lo = std::lower_bound(
                evs.data(), evs.data() + evs.size(), pc + 1,
                [](const QFlush& e, std::int64_t col) { return e.col < col; });
            const QFlush* hi = std::lower_bound(
                lo, evs.data() + evs.size(), pc + kc + 1,
                [](const QFlush& e, std::int64_t col) { return e.col < col; });
            q8_micro_tile(aslab + ip * kQMR * kcp, bp + jp * kcp * kQNR, kc,
                          pc, lo, hi, sx, y, n, jc + jp * kQNR, jv, ip * kQMR,
                          m);
          }
        }
      }
    }
  };
  if (m * k * n < kMinParallelWork) {
    stripe_body(0, stripes);
  } else {
    parallel::parallel_for(0, stripes, 1, stripe_body);
  }
}

void q4_gemm_panel(const Q4PanelA& w, const std::int8_t* qx, float sx,
                   std::int64_t n, float* y) {
  const std::int64_t m = w.m, k = w.k, slab = w.slab;
  const std::int64_t mpad = round_up(m, kQMR);
  const std::int64_t row_panels = mpad / kQMR;
  const std::int64_t stripes = (n + kQNC - 1) / kQNC;
  const std::int64_t slab_qn = (slab + 3) / 4;  // full-slab quad count
  auto stripe_body = [&](std::int64_t s0, std::int64_t s1) {
    workspace::Scope ws;
    std::int8_t* bp = ws.i8(slab_qn * 32 * (kQNC / kQNR));
    std::int32_t* ps = ws.i32((slab + 1) * kQNR);
    for (std::int64_t s = s0; s < s1; ++s) {
      const std::int64_t jc = s * kQNC;
      const std::int64_t nw = std::min(kQNC, n - jc);
      const std::int64_t jpanels = (nw + kQNR - 1) / kQNR;
      for (std::int64_t pc = 0; pc < k; pc += slab) {
        const std::int64_t kc = std::min(slab, k - pc);
        const std::int64_t qn = (kc + 3) / 4;
        q4_pack_b_slab(bp, qx, n, pc, kc, jc, nw);
        // All slabs before this one are full, so their quad count is
        // slab_qn — mirrors q4_pack_a's running offset.
        const std::int8_t* aslab =
            w.data.data() + row_panels * (pc / slab) * slab_qn * 2 * kQMR;
        for (std::int64_t jp = 0; jp < jpanels; ++jp) {
          const std::int64_t jv = std::min(kQNR, nw - jp * kQNR);
          q4_prefix_sums(qx, n, pc, kc, jc + jp * kQNR, jv, ps);
          for (std::int64_t ip = 0; ip < row_panels; ++ip) {
            const auto& evs = w.events[static_cast<std::size_t>(ip)];
            const QFlush* lo = std::lower_bound(
                evs.data(), evs.data() + evs.size(), pc + 1,
                [](const QFlush& e, std::int64_t col) { return e.col < col; });
            const QFlush* hi = std::lower_bound(
                lo, evs.data() + evs.size(), pc + kc + 1,
                [](const QFlush& e, std::int64_t col) { return e.col < col; });
            q4_micro_tile(aslab + ip * qn * 2 * kQMR, bp + jp * qn * 32, kc,
                          pc, lo, hi, sx, ps, y, n, jc + jp * kQNR, jv,
                          ip * kQMR);
          }
        }
      }
    }
  };
  if (m * k * n < kMinParallelWork) {
    stripe_body(0, stripes);
  } else {
    parallel::parallel_for(0, stripes, 1, stripe_body);
  }
}

namespace {

/// Exact abs-max of a range. Max is associative, commutative, and rounds
/// nothing, so the vector-lane decomposition returns the same value as a
/// scalar sweep for any finite input.
float abs_max_range(const float* src, std::int64_t i0, std::int64_t i1) {
  float a = 0.0f;
#if defined(UPAQ_S8_VEC) && defined(__AVX2__)
  // GCC will not vectorize float max reductions without -ffast-math, so
  // spell out the lanes (the reduction is exact either way).
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 acc = _mm256_setzero_ps();
  std::int64_t i = i0;
  for (; i + 8 <= i1; i += 8)
    acc = _mm256_max_ps(acc, _mm256_and_ps(absmask, _mm256_loadu_ps(src + i)));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (float l : lanes) a = std::max(a, l);
  for (; i < i1; ++i) a = std::max(a, std::fabs(src[i]));
#else
  for (std::int64_t i = i0; i < i1; ++i) a = std::max(a, std::fabs(src[i]));
#endif
  return a;
}

}  // namespace

float s8_quantize(const float* src, std::int64_t n, int bits,
                  std::int8_t* dst) {
  // Abs-max with chunked partials: max is exact and order-independent, so
  // combining per-chunk maxima gives the same alpha at any thread count.
  float alpha = 0.0f;
  if (n < kMinParallelWork) {
    alpha = abs_max_range(src, 0, n);
  } else {
    const std::int64_t chunks = (n + kMinParallelWork - 1) / kMinParallelWork;
    std::vector<float> partial(static_cast<std::size_t>(chunks), 0.0f);
    parallel::parallel_for(0, n, kMinParallelWork,
                           [&](std::int64_t i0, std::int64_t i1) {
                             partial[static_cast<std::size_t>(
                                 i0 / kMinParallelWork)] =
                                 abs_max_range(src, i0, i1);
                           });
    for (float a : partial) alpha = std::max(alpha, a);
  }
  if (alpha == 0.0f) {
    // Caller scratch (workspace arena) is not pre-zeroed, so fill explicitly.
    std::fill(dst, dst + n, static_cast<std::int8_t>(0));
    return 1.0f;
  }

  const double max_value = std::pow(2.0, bits - 1) - 1.0;
  const float scale = static_cast<float>(alpha / max_value);
  // One multiply + clamp + round-half-away per element, all in float so the
  // loop stays in SIMD registers. Clamping first bounds the value, so the
  // truncating cast is exact. Each element is touched exactly once — the
  // codes cannot depend on vector width or thread count.
  const float inv = 1.0f / scale;
  const float maxv = static_cast<float>(max_value);
  auto convert = [&](std::int64_t i0, std::int64_t i1) {
    std::int64_t i = i0;
#if defined(UPAQ_S8_VEC) && defined(__AVX2__)
    // Same per-element sequence as the scalar tail below — multiply, clamp,
    // add copysign(0.5), truncate — just eight lanes at a time (GCC keeps
    // this loop scalar on its own because of the int8 narrowing store). The
    // clamp bounds every lane inside int8 range, so the saturating packs
    // never saturate and the narrowing is exact.
    const __m256 vinv = _mm256_set1_ps(inv);
    const __m256 vmax = _mm256_set1_ps(maxv);
    const __m256 vmin = _mm256_set1_ps(-maxv);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 signmask = _mm256_castsi256_ps(_mm256_set1_epi32(
        static_cast<std::int32_t>(0x80000000)));
    for (; i + 8 <= i1; i += 8) {
      __m256 v = _mm256_mul_ps(_mm256_loadu_ps(src + i), vinv);
      v = _mm256_min_ps(_mm256_max_ps(v, vmin), vmax);
      const __m256 h = _mm256_or_ps(_mm256_and_ps(v, signmask), half);
      const __m256i q = _mm256_cvttps_epi32(_mm256_add_ps(v, h));
      const __m128i w =
          _mm_packs_epi32(_mm256_castsi256_si128(q),
                          _mm256_extracti128_si256(q, 1));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i),
                       _mm_packs_epi16(w, w));
    }
#endif
    for (; i < i1; ++i) {
      float v = src[i] * inv;
      v = std::min(std::max(v, -maxv), maxv);
      // Round half away from zero via a truncating cast; copysign keeps the
      // loop branch-free.
      dst[i] = static_cast<std::int8_t>(
          static_cast<std::int32_t>(v + std::copysign(0.5f, v)));
    }
  };
  if (n < kMinParallelWork) {
    convert(0, n);
  } else {
    parallel::parallel_for(0, n, kMinParallelWork, convert);
  }
  return scale;
}

namespace {

// Gathers one im2col row (one channel + kernel offset (ky, kx)) into `dst`
// (oh*ow codes): per output row, zero the out-of-bounds flanks and copy the
// in-bounds interior with no per-element bounds checks (memcpy at stride 1,
// a tight strided gather otherwise).
void s8_im2col_row(const std::int8_t* in, std::int64_t ch, std::int64_t h,
                   std::int64_t w, int ky, int kx, int stride, int pad,
                   std::int64_t oh, std::int64_t ow, std::int8_t* dst) {
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    const std::int64_t iy = oy * stride - pad + ky;
    std::int8_t* drow = dst + oy * ow;
    if (iy < 0 || iy >= h) {
      std::memset(drow, 0, static_cast<std::size_t>(ow));
      continue;
    }
    const std::int8_t* src = in + (ch * h + iy) * w;
    // In-bounds ox range for ix = ox * stride + off.
    const std::int64_t off = kx - pad;
    const std::int64_t x0 = std::clamp<std::int64_t>(
        off < 0 ? (-off + stride - 1) / stride : 0, 0, ow);
    const std::int64_t x1 =
        std::clamp<std::int64_t>((w - off + stride - 1) / stride, x0, ow);
    if (x0 > 0) std::memset(drow, 0, static_cast<std::size_t>(x0));
    if (stride == 1) {
      if (x1 > x0)
        std::memcpy(drow + x0, src + x0 + off,
                    static_cast<std::size_t>(x1 - x0));
    } else {
      const std::int8_t* s = src + x0 * stride + off;
      for (std::int64_t ox = x0; ox < x1; ++ox, s += stride) drow[ox] = *s;
    }
    if (x1 < ow) std::memset(drow + x1, 0, static_cast<std::size_t>(ow - x1));
  }
}

}  // namespace

void s8_im2col(const std::int8_t* in, std::int64_t c, std::int64_t h,
               std::int64_t w, int k, int stride, int pad, std::int64_t oh,
               std::int64_t ow, std::int8_t* out) {
  const std::int64_t rows = c * k * k;
  auto fill_rows = [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t row = r0; row < r1; ++row) {
      const std::int64_t ch = row / (k * k);
      const int ky = static_cast<int>((row / k) % k);
      const int kx = static_cast<int>(row % k);
      s8_im2col_row(in, ch, h, w, ky, kx, stride, pad, oh, ow,
                    out + row * oh * ow);
    }
  };
  if (rows * oh * ow < kMinParallelWork) {
    fill_rows(0, rows);
  } else {
    parallel::parallel_for(0, rows, 4, fill_rows);
  }
}

void s8_im2col_taps(const std::int8_t* in, std::int64_t c, std::int64_t h,
                    std::int64_t w, int k, int stride, int pad,
                    std::int64_t oh, std::int64_t ow, const std::int32_t* taps,
                    std::int64_t ntaps, std::int8_t* out) {
  const std::int64_t rows = c * ntaps;
  auto fill_rows = [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t row = r0; row < r1; ++row) {
      const std::int64_t ch = row / ntaps;
      const std::int32_t tap = taps[row % ntaps];
      const int ky = tap / k;
      const int kx = tap % k;
      s8_im2col_row(in, ch, h, w, ky, kx, stride, pad, oh, ow,
                    out + row * oh * ow);
    }
  };
  if (rows * oh * ow < kMinParallelWork) {
    fill_rows(0, rows);
  } else {
    parallel::parallel_for(0, rows, 4, fill_rows);
  }
}

}  // namespace upaq::gemm
