#include "tensor/gemm_kernel.h"

#include <algorithm>

#include "parallel/thread_pool.h"
#include "prof/prof.h"
#include "tensor/workspace.h"

namespace upaq::gemm {

namespace {

// Same below-this-runs-serial gating as tensor/ops.cpp: dispatch cost beats
// the win for tiny products, and gating on the (shape-only) work size keeps
// serial and parallel arithmetic identical.
constexpr std::int64_t kMinParallelWork = 1 << 15;
constexpr std::int64_t kSparseRowGrain = 8;

std::int64_t round_up(std::int64_t v, std::int64_t m) {
  return (v + m - 1) / m * m;
}

/// MR x NR register micro-tile over one KC slab, written to `acc`.
///
/// The accumulators must be one vector register per C row (broadcast A
/// element x contiguous B row, the classic outer-product shape). Left to
/// its own devices the auto-vectorizer instead vectorizes over the A
/// panel's contiguous r axis and drowns the FMAs in cross-lane shuffles,
/// so on GNU compilers the shape is spelled out with vector extensions —
/// ISA-independent (the compiler lowers to whatever the target offers)
/// and exactly one kNR-wide lane group per C row.
#if defined(__GNUC__) || defined(__clang__)
typedef float vnr __attribute__((vector_size(kNR * sizeof(float))));
static_assert(kNR == 8, "micro-tile accumulator type assumes kNR == 8");

void micro_tile(std::int64_t kc, const float* __restrict__ ap,
                const float* __restrict__ bp, float* __restrict__ acc) {
  vnr t0{}, t1{}, t2{}, t3{}, t4{}, t5{};
  static_assert(kMR == 6, "accumulator count assumes kMR == 6");
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict__ a = ap + p * kMR;
    vnr b;
    __builtin_memcpy(&b, bp + p * kNR, sizeof(b));
    t0 += a[0] * b;
    t1 += a[1] * b;
    t2 += a[2] * b;
    t3 += a[3] * b;
    t4 += a[4] * b;
    t5 += a[5] * b;
  }
  const vnr t[kMR] = {t0, t1, t2, t3, t4, t5};
  __builtin_memcpy(acc, t, sizeof(t));
}
#else
void micro_tile(std::int64_t kc, const float* ap, const float* bp,
                float* acc) {
  float t[kMR * kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kMR;
    const float* b = bp + p * kNR;
    for (int r = 0; r < kMR; ++r) {
      const float ar = a[r];
      for (int j = 0; j < kNR; ++j) t[r * kNR + j] += ar * b[j];
    }
  }
  for (int i = 0; i < kMR * kNR; ++i) acc[i] = t[i];
}
#endif

/// Packs rows [0, m) x columns [pc, pc+kc) of row-major A into MR-row panels
/// at `dst` (column-major within a panel, rows beyond m zero-filled).
void pack_a_slab(float* dst, const float* a, std::int64_t m, std::int64_t k,
                 std::int64_t pc, std::int64_t kc, std::int64_t mpad) {
  for (std::int64_t ip = 0; ip < mpad / kMR; ++ip) {
    float* panel = dst + ip * kMR * kc;
    for (std::int64_t j = 0; j < kc; ++j) {
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t row = ip * kMR + r;
        panel[j * kMR + r] = row < m ? a[row * k + pc + j] : 0.0f;
      }
    }
  }
}

/// Packs a kc x nw B slab (columns [jc, jc+nw), k-rows [pc, pc+kc)) into
/// NR-column panels. BT = false reads row-major (k, n) B; BT = true reads
/// row-major (n, k) B as its transpose.
template <bool BT>
void pack_b_slab(float* dst, const float* b, std::int64_t k, std::int64_t n,
                 std::int64_t pc, std::int64_t kc, std::int64_t jc,
                 std::int64_t nw) {
  const std::int64_t jpanels = (nw + kNR - 1) / kNR;
  for (std::int64_t jp = 0; jp < jpanels; ++jp) {
    float* panel = dst + jp * kc * kNR;
    const std::int64_t jv = std::min(kNR, nw - jp * kNR);
    if constexpr (BT) {
      // Transposed read: column (jc + j) of B^T is row (jc + j) of B, so
      // each jr strand streams contiguously over p.
      for (std::int64_t jr = 0; jr < kNR; ++jr) {
        if (jr < jv) {
          const float* src = b + (jc + jp * kNR + jr) * k + pc;
          for (std::int64_t p = 0; p < kc; ++p) panel[p * kNR + jr] = src[p];
        } else {
          for (std::int64_t p = 0; p < kc; ++p) panel[p * kNR + jr] = 0.0f;
        }
      }
    } else {
      (void)k;
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * n + jc + jp * kNR;
        float* row = panel + p * kNR;
        for (std::int64_t jr = 0; jr < jv; ++jr) row[jr] = src[jr];
        for (std::int64_t jr = jv; jr < kNR; ++jr) row[jr] = 0.0f;
      }
    }
  }
}

/// Blocked panel kernel over a pre-packed A (`ap`, mpad x k in slab layout).
/// Parallel grain: one kNC-column stripe per chunk — stripes own disjoint C
/// columns and accumulate KC slabs in ascending k order, so the result is a
/// pure function of (shapes, values), never the thread count.
template <bool BT>
void run_blocked(const float* ap, std::int64_t m, std::int64_t k,
                 const float* b, float* c, std::int64_t n, float alpha) {
  const std::int64_t mpad = round_up(m, kMR);
  const std::int64_t row_panels = mpad / kMR;
  const std::int64_t stripes = (n + kNC - 1) / kNC;
  auto stripe_body = [&](std::int64_t s0, std::int64_t s1) {
    workspace::Scope ws;
    float* bp = ws.floats(kKC * kNC);
    for (std::int64_t s = s0; s < s1; ++s) {
      const std::int64_t jc = s * kNC;
      const std::int64_t nw = std::min(kNC, n - jc);
      const std::int64_t jpanels = (nw + kNR - 1) / kNR;
      for (std::int64_t pc = 0; pc < k; pc += kKC) {
        const std::int64_t kc = std::min(kKC, k - pc);
        pack_b_slab<BT>(bp, b, k, n, pc, kc, jc, nw);
        const float* aslab = ap + mpad * pc;
        for (std::int64_t jp = 0; jp < jpanels; ++jp) {
          const std::int64_t jv = std::min(kNR, nw - jp * kNR);
          for (std::int64_t ip = 0; ip < row_panels; ++ip) {
            float acc[kMR * kNR] = {};
            micro_tile(kc, aslab + ip * kMR * kc, bp + jp * kc * kNR, acc);
            const std::int64_t rv = std::min(kMR, m - ip * kMR);
            for (std::int64_t r = 0; r < rv; ++r) {
              float* crow = c + (ip * kMR + r) * n + jc + jp * kNR;
              for (std::int64_t j = 0; j < jv; ++j)
                crow[j] += alpha * acc[r * kNR + j];
            }
          }
        }
      }
    }
  };
  if (m * k * n < kMinParallelWork) {
    stripe_body(0, stripes);
  } else {
    parallel::parallel_for(0, stripes, 1, stripe_body);
  }
}

/// Zero-skipping row kernel (the pre-blocking i-k-j loop): per-element skips
/// make pattern-pruned weight rows cheap, which dense panel math cannot do.
void run_rowskip(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, float alpha) {
  auto rows = [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = alpha * a[i * k + kk];
        if (av == 0.0f) continue;  // free zero-skipping for pruned rows
        const float* brow = b + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kMinParallelWork) {
    rows(0, m);
  } else {
    parallel::parallel_for(0, m, kSparseRowGrain, rows);
  }
}

bool mostly_zero(const float* a, std::int64_t count) {
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < count; ++i) zeros += a[i] == 0.0f;
  return static_cast<double>(zeros) >
         kSparseZeroFraction * static_cast<double>(count);
}

void count_call(std::int64_t m, std::int64_t k, std::int64_t n) {
  prof::add(prof::Counter::kGemmFlops,
            static_cast<std::uint64_t>(2 * m * k * n));
  prof::add(prof::Counter::kGemmKernelCalls, 1);
}

}  // namespace

PackedA pack_a(const float* a, std::int64_t m, std::int64_t k) {
  PackedA p;
  p.m = m;
  p.k = k;
  p.sparse = mostly_zero(a, m * k);
  if (p.sparse) {
    p.data.assign(a, a + m * k);
    return p;
  }
  const std::int64_t mpad = round_up(m, kMR);
  p.data.assign(static_cast<std::size_t>(mpad * k), 0.0f);
  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    pack_a_slab(p.data.data() + mpad * pc, a, m, k, pc, kc, mpad);
  }
  return p;
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float alpha) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  count_call(m, k, n);
  if (mostly_zero(a, m * k)) {
    run_rowskip(a, b, c, m, k, n, alpha);
    return;
  }
  workspace::Scope ws;
  const std::int64_t mpad = round_up(m, kMR);
  float* ap = ws.floats(mpad * k);
  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    pack_a_slab(ap + mpad * pc, a, m, k, pc, kc, mpad);
  }
  run_blocked<false>(ap, m, k, b, c, n, alpha);
}

void gemm_packed(const PackedA& a, const float* b, float* c, std::int64_t n,
                 float alpha) {
  if (a.m <= 0 || a.k <= 0 || n <= 0) return;
  count_call(a.m, a.k, n);
  if (a.sparse) {
    run_rowskip(a.data.data(), b, c, a.m, a.k, n, alpha);
    return;
  }
  run_blocked<false>(a.data.data(), a.m, a.k, b, c, n, alpha);
}

void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float alpha) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  count_call(m, k, n);
  workspace::Scope ws;
  const std::int64_t mpad = round_up(m, kMR);
  float* ap = ws.floats(mpad * k);
  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    pack_a_slab(ap + mpad * pc, a, m, k, pc, kc, mpad);
  }
  run_blocked<true>(ap, m, k, b, c, n, alpha);
}

void s8_segment_accumulate(const std::int32_t* cols, const std::int32_t* codes,
                           std::int64_t len, const std::int8_t* qx,
                           std::int64_t ldq, std::int64_t j0, std::int64_t nb,
                           std::int32_t* acc) {
  for (std::int64_t e = 0; e < len; ++e) {
    const std::int32_t w = codes[e];
    const std::int8_t* brow = qx + static_cast<std::int64_t>(cols[e]) * ldq + j0;
    for (std::int64_t j = 0; j < nb; ++j)
      acc[j] += w * static_cast<std::int32_t>(brow[j]);
  }
}

}  // namespace upaq::gemm
