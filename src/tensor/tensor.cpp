#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "parallel/thread_pool.h"

namespace upaq {

namespace {
// Elementwise loops below this length run inline (one chunk); the grain is
// thread-count independent so results match across UPAQ_THREADS settings.
constexpr std::int64_t kElemwiseGrain = 1 << 15;
}  // namespace

std::string shape_to_string(const Shape& s) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i];
  }
  os << "]";
  return os.str();
}

std::int64_t shape_numel(const Shape& s) {
  std::int64_t n = 1;
  for (auto d : s) {
    UPAQ_CHECK(d >= 0, "negative dimension in shape " + shape_to_string(s));
    n *= d;
  }
  return n;
}

bool shape_equal(const Shape& a, const Shape& b) { return a == b; }

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  UPAQ_CHECK(static_cast<std::int64_t>(data_.size()) == shape_numel(shape_),
             "data size " + std::to_string(data_.size()) +
                 " does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::kaiming(Shape shape, Rng& rng) {
  UPAQ_CHECK(!shape.empty(), "kaiming init needs a non-empty shape");
  std::int64_t fan_in = 1;
  for (std::size_t i = 1; i < shape.size(); ++i) fan_in *= shape[i];
  if (shape.size() == 1) fan_in = shape[0];
  const float stddev = std::sqrt(2.0f / static_cast<float>(std::max<std::int64_t>(fan_in, 1)));
  return normal(std::move(shape), rng, 0.0f, stddev);
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

float& Tensor::at_flat(std::int64_t i) {
  UPAQ_CHECK(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at_flat(std::int64_t i) const {
  UPAQ_CHECK(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::idx(std::initializer_list<std::int64_t> indices) const {
  UPAQ_ASSERT(indices.size() == shape_.size(),
              "indexing rank mismatch: got " + std::to_string(indices.size()) +
                  " indices for shape " + shape_to_string(shape_));
  std::size_t flat = 0;
  std::size_t d = 0;
  for (std::int64_t i : indices) {
    flat = flat * static_cast<std::size_t>(shape_[d]) + static_cast<std::size_t>(i);
    ++d;
  }
  return flat;
}

Tensor Tensor::reshape(Shape new_shape) const {
  UPAQ_CHECK(shape_numel(new_shape) == numel(),
             "reshape from " + shape_to_string(shape_) + " to " +
                 shape_to_string(new_shape) + " changes element count");
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::add_(const Tensor& other) {
  UPAQ_CHECK(other.numel() == numel(), "add_: element count mismatch");
  float* a = data_.data();
  const float* b = other.data_.data();
  parallel::parallel_for(0, numel(), kElemwiseGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) a[i] += b[i];
                         });
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  UPAQ_CHECK(other.numel() == numel(), "sub_: element count mismatch");
  float* a = data_.data();
  const float* b = other.data_.data();
  parallel::parallel_for(0, numel(), kElemwiseGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) a[i] -= b[i];
                         });
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  UPAQ_CHECK(other.numel() == numel(), "mul_: element count mismatch");
  float* a = data_.data();
  const float* b = other.data_.data();
  parallel::parallel_for(0, numel(), kElemwiseGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) a[i] *= b[i];
                         });
  return *this;
}

Tensor& Tensor::scale_(float s) {
  float* a = data_.data();
  parallel::parallel_for(0, numel(), kElemwiseGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) a[i] *= s;
                         });
  return *this;
}

Tensor& Tensor::apply_(const std::function<float(float)>& f) {
  for (auto& v : data_) v = f(v);
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  UPAQ_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  UPAQ_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::var() const {
  if (data_.empty()) return 0.0f;
  const double mu = mean();
  double acc = 0.0;
  for (float v : data_) {
    const double d = v - mu;
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(data_.size()));
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::int64_t Tensor::count_nonzero() const {
  std::int64_t n = 0;
  for (float v : data_)
    if (v != 0.0f) ++n;
  return n;
}

std::int64_t Tensor::argmax() const {
  UPAQ_CHECK(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::string Tensor::to_string(int max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.sub_(b);
  return out;
}

Tensor operator*(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.mul_(b);
  return out;
}

Tensor operator*(const Tensor& a, float s) {
  Tensor out = a;
  out.scale_(s);
  return out;
}

}  // namespace upaq
