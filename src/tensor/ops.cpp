#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace upaq::ops {

Tensor matmul(const Tensor& a, const Tensor& b) {
  UPAQ_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects 2-D tensors");
  UPAQ_CHECK(a.dim(1) == b.dim(0), "matmul inner dimension mismatch: " +
                                       shape_to_string(a.shape()) + " x " +
                                       shape_to_string(b.shape()));
  Tensor c({a.dim(0), b.dim(1)});
  gemm_accumulate(a, b, c, 1.0f);
  return c;
}

void gemm_accumulate(const Tensor& a, const Tensor& b, Tensor& c, float alpha) {
  UPAQ_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
             "gemm expects 2-D tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  UPAQ_CHECK(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n,
             "gemm shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order keeps the inner loop contiguous over B and C rows.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = alpha * pa[i * k + kk];
      if (av == 0.0f) continue;  // free zero-skipping for pruned rows
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

std::int64_t conv_out_size(std::int64_t in, int k, int stride, int pad) {
  UPAQ_CHECK(stride > 0, "stride must be positive");
  const std::int64_t eff = in + 2 * pad - k;
  UPAQ_CHECK(eff >= 0, "kernel larger than padded input");
  return eff / stride + 1;
}

Tensor im2col(const Tensor& input, int kh, int kw, int stride, int pad) {
  UPAQ_CHECK(input.rank() == 3, "im2col expects (C,H,W)");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t oh = conv_out_size(h, kh, stride, pad);
  const std::int64_t ow = conv_out_size(w, kw, stride, pad);
  Tensor cols({c * kh * kw, oh * ow});
  const float* in = input.data();
  float* out = cols.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const std::int64_t row = (ch * kh + ky) * kw + kx;
        float* dst = out + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= h) {
            std::fill(dst + oy * ow, dst + (oy + 1) * ow, 0.0f);
            continue;
          }
          const float* src = in + (ch * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, std::int64_t channels, std::int64_t height,
              std::int64_t width, int kh, int kw, int stride, int pad) {
  UPAQ_CHECK(cols.rank() == 2, "col2im expects 2-D columns");
  const std::int64_t oh = conv_out_size(height, kh, stride, pad);
  const std::int64_t ow = conv_out_size(width, kw, stride, pad);
  UPAQ_CHECK(cols.dim(0) == channels * kh * kw && cols.dim(1) == oh * ow,
             "col2im shape mismatch");
  Tensor img({channels, height, width});
  const float* in = cols.data();
  float* out = img.data();
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const std::int64_t row = (ch * kh + ky) * kw + kx;
        const float* src = in + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) continue;
          float* dst = out + (ch * height + iy) * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            if (ix >= 0 && ix < width) dst[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
  return img;
}

float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

void sigmoid_(Tensor& t) {
  for (auto& v : t.flat()) v = sigmoid(v);
}

void softmax_rows_(Tensor& t) {
  UPAQ_CHECK(t.rank() == 2, "softmax_rows_ expects a 2-D tensor");
  const std::int64_t rows = t.dim(0), cols = t.dim(1);
  float* p = t.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = p + r * cols;
    const float mx = *std::max_element(row, row + cols);
    double sum = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void clamp_min_(Tensor& t, float floor) {
  for (auto& v : t.flat()) v = std::max(v, floor);
}

}  // namespace upaq::ops
