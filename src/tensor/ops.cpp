#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.h"
#include "prof/prof.h"
#include "tensor/gemm_kernel.h"

namespace upaq::ops {

namespace {

// Kernels below this many scalar operations run serially: pool dispatch
// costs more than it saves, and the serial path is identical anyway because
// chunk boundaries do not depend on thread count.
constexpr std::int64_t kMinParallelWork = 1 << 15;

// Fixed chunk grain (rows per chunk). Thread-count independent by design —
// see parallel/thread_pool.h for the determinism contract.
constexpr std::int64_t kColRowGrain = 4;

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  UPAQ_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects 2-D tensors");
  UPAQ_CHECK(a.dim(1) == b.dim(0), "matmul inner dimension mismatch: " +
                                       shape_to_string(a.shape()) + " x " +
                                       shape_to_string(b.shape()));
  Tensor c({a.dim(0), b.dim(1)});
  gemm_accumulate(a, b, c, 1.0f);
  return c;
}

void gemm_accumulate(const Tensor& a, const Tensor& b, Tensor& c, float alpha) {
  UPAQ_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
             "gemm expects 2-D tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  UPAQ_CHECK(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n,
             "gemm shape mismatch");
  gemm::gemm(a.data(), b.data(), c.data(), m, k, n, alpha);
}

void gemm_nt_accumulate(const Tensor& a, const Tensor& b, Tensor& c,
                        float alpha) {
  UPAQ_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
             "gemm_nt expects 2-D tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  UPAQ_CHECK(b.dim(1) == k && c.dim(0) == m && c.dim(1) == n,
             "gemm_nt shape mismatch");
  gemm::gemm_nt(a.data(), b.data(), c.data(), m, k, n, alpha);
}

std::int64_t conv_out_size(std::int64_t in, int k, int stride, int pad) {
  UPAQ_CHECK(stride > 0, "stride must be positive");
  const std::int64_t eff = in + 2 * pad - k;
  UPAQ_CHECK(eff >= 0, "kernel larger than padded input");
  return eff / stride + 1;
}

void im2col_into(const float* in, std::int64_t c, std::int64_t h,
                 std::int64_t w, int kh, int kw, int stride, int pad,
                 float* out) {
  const std::int64_t oh = conv_out_size(h, kh, stride, pad);
  const std::int64_t ow = conv_out_size(w, kw, stride, pad);
  const std::int64_t rows = c * kh * kw;
  prof::add(prof::Counter::kIm2colBytes,
            static_cast<std::uint64_t>(rows * oh * ow) * sizeof(float));
  auto fill_rows = [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t row = r0; row < r1; ++row) {
      const std::int64_t ch = row / (kh * kw);
      const int ky = static_cast<int>((row / kw) % kh);
      const int kx = static_cast<int>(row % kw);
      float* dst = out + row * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        const std::int64_t iy = oy * stride - pad + ky;
        if (iy < 0 || iy >= h) {
          std::fill(dst + oy * ow, dst + (oy + 1) * ow, 0.0f);
          continue;
        }
        const float* src = in + (ch * h + iy) * w;
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t ix = ox * stride - pad + kx;
          dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src[ix] : 0.0f;
        }
      }
    }
  };
  if (rows * oh * ow < kMinParallelWork) {
    fill_rows(0, rows);
  } else {
    parallel::parallel_for(0, rows, kColRowGrain, fill_rows);
  }
}

namespace {

/// Tensor-returning wrapper over the raw kernel.
Tensor im2col_impl(const float* in, std::int64_t c, std::int64_t h,
                   std::int64_t w, int kh, int kw, int stride, int pad) {
  const std::int64_t oh = conv_out_size(h, kh, stride, pad);
  const std::int64_t ow = conv_out_size(w, kw, stride, pad);
  Tensor cols({c * kh * kw, oh * ow});
  im2col_into(in, c, h, w, kh, kw, stride, pad, cols.data());
  return cols;
}

}  // namespace

Tensor im2col(const Tensor& input, int kh, int kw, int stride, int pad) {
  UPAQ_CHECK(input.rank() == 3, "im2col expects (C,H,W)");
  return im2col_impl(input.data(), input.dim(0), input.dim(1), input.dim(2),
                     kh, kw, stride, pad);
}

Tensor im2col(const Tensor& input, std::int64_t batch, int kh, int kw,
              int stride, int pad) {
  UPAQ_CHECK(input.rank() == 4, "batched im2col expects (N,C,H,W)");
  UPAQ_CHECK(batch >= 0 && batch < input.dim(0), "im2col batch out of range");
  const std::int64_t c = input.dim(1), h = input.dim(2), w = input.dim(3);
  return im2col_impl(input.data() + batch * c * h * w, c, h, w, kh, kw,
                     stride, pad);
}

Tensor col2im(const Tensor& cols, std::int64_t channels, std::int64_t height,
              std::int64_t width, int kh, int kw, int stride, int pad) {
  UPAQ_CHECK(cols.rank() == 2, "col2im expects 2-D columns");
  const std::int64_t oh = conv_out_size(height, kh, stride, pad);
  const std::int64_t ow = conv_out_size(width, kw, stride, pad);
  UPAQ_CHECK(cols.dim(0) == channels * kh * kw && cols.dim(1) == oh * ow,
             "col2im shape mismatch");
  Tensor img({channels, height, width});
  const float* in = cols.data();
  float* out = img.data();
  // Parallel over channels: every scatter-add for channel ch lands in that
  // channel's (H,W) plane, so chunks write disjoint regions and the add
  // order within a channel is the fixed serial one.
  auto scatter = [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx) {
          const std::int64_t row = (ch * kh + ky) * kw + kx;
          const float* src = in + row * oh * ow;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const std::int64_t iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= height) continue;
            float* dst = out + (ch * height + iy) * width;
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const std::int64_t ix = ox * stride - pad + kx;
              if (ix >= 0 && ix < width) dst[ix] += src[oy * ow + ox];
            }
          }
        }
      }
    }
  };
  if (channels * kh * kw * oh * ow < kMinParallelWork) {
    scatter(0, channels);
  } else {
    parallel::parallel_for(0, channels, 1, scatter);
  }
  return img;
}

float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

void sigmoid_(Tensor& t) {
  float* p = t.data();
  parallel::parallel_for(0, t.numel(), kMinParallelWork,
                         [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i)
                             p[i] = sigmoid(p[i]);
                         });
}

void softmax_rows_(Tensor& t) {
  UPAQ_CHECK(t.rank() == 2, "softmax_rows_ expects a 2-D tensor");
  const std::int64_t rows = t.dim(0), cols = t.dim(1);
  float* p = t.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = p + r * cols;
    const float mx = *std::max_element(row, row + cols);
    double sum = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void clamp_min_(Tensor& t, float floor) {
  float* p = t.data();
  parallel::parallel_for(0, t.numel(), kMinParallelWork,
                         [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i)
                             p[i] = std::max(p[i], floor);
                         });
}

}  // namespace upaq::ops
