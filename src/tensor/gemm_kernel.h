// Cache-blocked, panel-packed GEMM micro-kernels.
//
// The float GEMM entry points of tensor/ops.h (and the qnn integer path)
// dispatch here. Two regimes, chosen per call from the *data*, never from
// the thread count:
//
//   dense  — the value matrix A is packed into MR-row panels, B into NR-column
//            panels, and an MR x NR register micro-tile walks KC-deep slabs.
//            Blocking: the N dimension is cut into fixed kNC-column stripes
//            (one stripe per parallel chunk — stripes own disjoint C columns,
//            so results are bitwise thread-count independent); within a
//            stripe the K dimension is cut into kKC slabs whose B panels are
//            packed into the thread workspace.
//   sparse — when more than kSparseZeroFraction of A is exactly zero (the
//            pattern-pruned conv weights), the zero-skipping row kernel is
//            kept: per-element skips beat dense panel math at 2-of-9 or
//            3-of-9 density, and the panel pack would erase the sparsity.
//
// Determinism: tile constants are compile-time fixed; stripe/slab boundaries
// are pure functions of (m, k, n). A C element is written by exactly one
// stripe, accumulating KC slabs in ascending k order, so 1-thread and
// N-thread runs are bitwise identical (tests/test_determinism.cpp).
//
// All scratch (panel packs) comes from workspace::Scope — steady-state calls
// allocate nothing.
#pragma once

#include <cstdint>
#include <vector>

namespace upaq::gemm {

// Register micro-tile: MR x NR fp32 accumulators. 6x8 = 12 SSE registers of
// accumulator state, leaving room for the A broadcasts and B loads without
// spilling at the baseline x86-64 ISA.
inline constexpr std::int64_t kMR = 6;
inline constexpr std::int64_t kNR = 8;
// K slab depth: one A panel (kMR * kKC floats) stays L1-resident while it
// sweeps the stripe's B panels.
inline constexpr std::int64_t kKC = 256;
// Stripe width (multiple of kNR): the parallel grain over N. A stripe's B
// slab pack is kKC * kNC * 4 bytes = 256 KiB, L2-resident per thread.
inline constexpr std::int64_t kNC = 256;
// A-matrix zero fraction above which the zero-skipping row kernel wins over
// dense panel math (pattern-pruned weights sit at 6/9 .. 7/9 zeros).
inline constexpr double kSparseZeroFraction = 0.5;

/// Pre-packed form of an (m x k) row-major A matrix, so steady-state callers
/// (conv weights) skip both the 2-D view copy and the per-call panel pack.
/// The representation matches the dispatch the values ask for: panel-packed
/// when dense, a plain row-major copy when the zero-skip path wins.
struct PackedA {
  std::int64_t m = 0, k = 0;
  bool sparse = false;
  std::vector<float> data;
  bool empty() const { return m == 0; }
};

/// Packs (and classifies) A once. Deterministic: layout and sparse/dense
/// choice depend only on the matrix contents.
PackedA pack_a(const float* a, std::int64_t m, std::int64_t k);

/// C(m,n) += alpha * A(m,k) * B(k,n); raw row-major buffers. Dispatches to
/// the sparse row kernel or the blocked panel kernel by A's zero fraction.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float alpha);

/// gemm() over a pre-packed A (no per-call classification or A pack).
void gemm_packed(const PackedA& a, const float* b, float* c, std::int64_t n,
                 float alpha);

/// C(m,n) += alpha * A(m,k) * B(n,k)^T — both operands row-major, B read as
/// its transpose (the conv dW orientation). Always blocked: the B panel pack
/// absorbs the transpose, so the micro-kernel is the same as gemm()'s.
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float alpha);

/// Column-blocked int32-accumulate helper for the qnn segment GEMM: for the
/// entry list {(cols[e], codes[e])}, e in [0, len), accumulates
///   acc[j] += codes[e] * qx[cols[e] * ldq + j0 + j]   for j in [0, nb)
/// into the caller's int32 block accumulator. Exact integer arithmetic —
/// bitwise identical to the unblocked sweep for any block decomposition.
void s8_segment_accumulate(const std::int32_t* cols, const std::int32_t* codes,
                           std::int64_t len, const std::int8_t* qx,
                           std::int64_t ldq, std::int64_t j0, std::int64_t nb,
                           std::int32_t* acc);

}  // namespace upaq::gemm
