// Cache-blocked, panel-packed GEMM micro-kernels.
//
// The float GEMM entry points of tensor/ops.h (and the qnn integer path)
// dispatch here. Two regimes, chosen per call from the *data*, never from
// the thread count:
//
//   dense  — the value matrix A is packed into MR-row panels, B into NR-column
//            panels, and an MR x NR register micro-tile walks KC-deep slabs.
//            Blocking: the N dimension is cut into fixed kNC-column stripes
//            (one stripe per parallel chunk — stripes own disjoint C columns,
//            so results are bitwise thread-count independent); within a
//            stripe the K dimension is cut into kKC slabs whose B panels are
//            packed into the thread workspace.
//   sparse — when more than kSparseZeroFraction of A is exactly zero (the
//            pattern-pruned conv weights), the zero-skipping row kernel is
//            kept: per-element skips beat dense panel math at 2-of-9 or
//            3-of-9 density, and the panel pack would erase the sparsity.
//
// Determinism: tile constants are compile-time fixed; stripe/slab boundaries
// are pure functions of (m, k, n). A C element is written by exactly one
// stripe, accumulating KC slabs in ascending k order, so 1-thread and
// N-thread runs are bitwise identical (tests/test_determinism.cpp).
//
// All scratch (panel packs) comes from workspace::Scope — steady-state calls
// allocate nothing.
#pragma once

#include <cstdint>
#include <vector>

namespace upaq::gemm {

// Register micro-tile: MR x NR fp32 accumulators. 6x8 = 12 SSE registers of
// accumulator state, leaving room for the A broadcasts and B loads without
// spilling at the baseline x86-64 ISA.
inline constexpr std::int64_t kMR = 6;
inline constexpr std::int64_t kNR = 8;
// K slab depth: one A panel (kMR * kKC floats) stays L1-resident while it
// sweeps the stripe's B panels.
inline constexpr std::int64_t kKC = 256;
// Stripe width (multiple of kNR): the parallel grain over N. A stripe's B
// slab pack is kKC * kNC * 4 bytes = 256 KiB, L2-resident per thread.
inline constexpr std::int64_t kNC = 256;
// A-matrix zero fraction above which the zero-skipping row kernel wins over
// dense panel math (pattern-pruned weights sit at 6/9 .. 7/9 zeros).
inline constexpr double kSparseZeroFraction = 0.5;

/// Pre-packed form of an (m x k) row-major A matrix, so steady-state callers
/// (conv weights) skip both the 2-D view copy and the per-call panel pack.
/// The representation matches the dispatch the values ask for: panel-packed
/// when dense, a plain row-major copy when the zero-skip path wins.
struct PackedA {
  std::int64_t m = 0, k = 0;
  bool sparse = false;
  std::vector<float> data;
  bool empty() const { return m == 0; }
};

/// Packs (and classifies) A once. Deterministic: layout and sparse/dense
/// choice depend only on the matrix contents.
PackedA pack_a(const float* a, std::int64_t m, std::int64_t k);

/// C(m,n) += alpha * A(m,k) * B(k,n); raw row-major buffers. Dispatches to
/// the sparse row kernel or the blocked panel kernel by A's zero fraction.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, float alpha);

/// gemm() over a pre-packed A (no per-call classification or A pack).
void gemm_packed(const PackedA& a, const float* b, float* c, std::int64_t n,
                 float alpha);

/// C(m,n) += alpha * A(m,k) * B(n,k)^T — both operands row-major, B read as
/// its transpose (the conv dW orientation). Always blocked: the B panel pack
/// absorbs the transpose, so the micro-kernel is the same as gemm()'s.
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, float alpha);

/// Column-blocked int32-accumulate helper for the qnn segment GEMM: for the
/// entry list {(cols[e], codes[e])}, e in [0, len), accumulates
///   acc[j] += codes[e] * qx[cols[e] * ldq + j0 + j]   for j in [0, nb)
/// into the caller's int32 block accumulator. Exact integer arithmetic —
/// bitwise identical to the unblocked sweep for any block decomposition.
void s8_segment_accumulate(const std::int32_t* cols, const std::int32_t* codes,
                           std::int64_t len, const std::int8_t* qx,
                           std::int64_t ldq, std::int64_t j0, std::int64_t nb,
                           std::int32_t* acc);

/// Fused short-segment kernel for the qnn segment GEMM (UPAQ patterns keep
/// 1..3 weights per kernel): for the `len` (1..3) entries {(cols[e],
/// codes[e])} computes, per column j in [0, nb),
///   t = m * float(sum_e codes[e] * qx[cols[e] * ldq + j0 + j]);  yb[j] += t
/// The integer dot is exact; the requantization is exactly one float multiply
/// followed by one float add per element (spelled as two statements so the
/// compiler cannot contract them differently between the vector body and the
/// scalar tail) — so the result is independent of the vector width.
void s8_fused_segment(const std::int32_t* cols, const std::int32_t* codes,
                      std::int64_t len, const std::int8_t* qx, std::int64_t ldq,
                      std::int64_t j0, std::int64_t nb, float m, float* yb);

/// Requantize-and-add flush of an int32 accumulator block: per j in [0, nb),
///   t = m * float(acc[j]);  yb[j] += t
/// The same one-multiply-one-add element sequence as s8_fused_segment and the
/// panel kernel's flush, so every integer path requantizes identically.
void s8_requant_add(const std::int32_t* acc, std::int64_t nb, float m,
                    float* yb);

/// One scale segment of a packed weight row: entries [begin, end) of the
/// qnn entry lists share the weight scale `scale`.
struct QSegment {
  float scale = 1.0f;
  std::int64_t begin = 0, end = 0;
};

/// The whole segment-path integer GEMM (qnn::PackedGemm's sparse branch):
/// y(rows, n) = requant(Wq * Xq) + bias over the entry lists, column-blocked
/// with the fused 1/2/3-entry kernels and the generic int32-accumulate path.
/// Per output element the operation order is: bias fill, then one
/// requantizing multiply-add per segment in ascending segment order — the
/// invariant every other integer path reproduces. Parallel over row blocks
/// (disjoint outputs, shape-only gating), so thread-count independent.
///
/// `codes_fit_i8` (every |code| <= 127, i.e. weight bits <= 8) unlocks the
/// vpmaddubsw 2-MACs/lane sub-byte kernel: entry pairs multiply as
/// |w| x sign-transferred activations with exact int16 pair sums
/// (2 * 127^2 < 2^15) widened to int32, and a 16-column output block stays
/// in registers across all of a row's segments. Integer sums are exact either
/// way, and the per-element float sequence is unchanged, so the flag can
/// never alter results — only speed.
void s8_gemm_segments(const std::int32_t* cols, const std::int32_t* codes,
                      const QSegment* segs, const std::int64_t* row_segs,
                      std::int64_t rows, std::int64_t k, const std::int8_t* qx,
                      float sx, std::int64_t n, const float* bias, float* y,
                      bool codes_fit_i8 = false);

// ---------------------------------------------------------------------------
// Panel-packed int8 GEMM (the dense-ish branch of the qnn integer path).
//
// Weight codes are decoded ONCE (at lowering time) into row-block-major int8
// panels mirroring PackedA's slab layout, and the per-group requantization
// metadata is reorganized into per-panel "flush events": ordered (column,
// row, scale) points at which a row's int32 accumulator is requantized into
// the float output. Because integer accumulation is exact and associative,
// any k-blocking of the products is bitwise-free; the float operations per
// output element (bias fill, then one t = s_g*s_x*sum multiply-add per
// segment, in ascending column order) are exactly the segment engine's, so
// the two paths produce bitwise identical outputs (tests/test_qgemm_kernel).

// Register micro-tile of the int8 kernel: kQMR rows x kQNR int32 accumulator
// lanes. Products widen int8 x int8 -> int16 (two k-steps pair-summed in
// int16: |w*x| <= 127^2, twice that still fits) and accumulate in int32.
inline constexpr std::int64_t kQMR = 6;
inline constexpr std::int64_t kQNR = 8;
// K slab depth (B pack granularity). The effective slab of a matrix is the
// largest multiple of its uniform scale-group period <= kQKC, so slab cuts
// always land on requant boundaries for every row.
inline constexpr std::int64_t kQKC = 512;
// Column-stripe width: the grain-1 parallel unit over N. Stripes own
// disjoint output columns, so 1-vs-N-thread runs are bitwise identical.
inline constexpr std::int64_t kQNC = 256;

/// One requantization point of a panel row: fire (flush the row's int32
/// accumulator with `scale`) when the k walk reaches `col`.
struct QFlush {
  std::int32_t col = 0;  ///< first column NOT in the segment
  std::int32_t row = 0;  ///< row within the panel, [0, kQMR)
  float scale = 1.0f;    ///< weight scale of the closing segment
};

/// Panel-packed int8 weight matrix with per-panel flush-event lists. Built
/// once per layer by qnn (which owns the codes and the scale bookkeeping);
/// consumed by q8_gemm_panel.
struct QPanelA {
  std::int64_t m = 0, k = 0;
  std::int64_t slab = 0;  ///< k-slab depth; every slab cut is a group boundary
  /// PackedA-style slab/panel layout with adjacent k positions
  /// pair-interleaved ([a(p,r), a(p+1,r)] contiguous per row), matching the
  /// micro-kernel's int16 multiply-add lanes; odd slab depths get a
  /// zero-filled phantom position (an exact integer no-op).
  std::vector<std::int8_t> data;
  /// Per row-panel, sorted by column: the requantization schedule.
  std::vector<std::vector<QFlush>> events;
  bool empty() const { return m == 0; }
};

/// Packs a dense row-major int8 code matrix into QPanelA's pair-interleaved
/// slab/panel layout (rows beyond m zero-filled). `slab` must be positive;
/// the caller aligns it to the matrix's scale-group period. Does not touch
/// `events`.
void q8_pack_a(const std::int8_t* a, std::int64_t m, std::int64_t k,
               std::int64_t slab, QPanelA& out);

/// y(m, n) += requant(Wq * Xq) over a panel-packed weight: qx is the (k, n)
/// row-major int8 activation matrix, sx its scale; y must already hold the
/// bias fill. Parallel grain: one kQNC column stripe per chunk.
void q8_gemm_panel(const QPanelA& w, const std::int8_t* qx, float sx,
                   std::int64_t n, float* y);

// ---------------------------------------------------------------------------
// Nibble-packed int4 GEMM (native sub-byte branch of the qnn integer path).
//
// For weight codes with |w| <= 7 (bits <= 4) the panel stores BIASED nibbles
// u = w + 8 in [1, 15] — two codes per byte — and the micro-kernel multiplies
// them unsigned via vpmaddubsw (4 MACs per int32 lane: u bytes x signed
// activation bytes, exact because 2 * 15 * 127 < 2^15), then subtracts the
// bias algebraically: for a flushed range [c0, c1),
//   sum w*x = sum (u-8)*x = biased_sum - 8 * (prefix[c1] - prefix[c0])
// with prefix[] an int32 per-column running sum of the activation slab,
// computed once per (slab, column-panel). Every quantity is an exact int32,
// so the recovered signed sum is bit-for-bit the direct sum and the requant
// replay contract (bias fill, then one mul+add per segment in ascending
// column order) is preserved exactly — the q4 path is bitwise identical to
// the segment and q8 paths at any thread count.

/// Nibble-packed int4 weight matrix with the same per-panel flush-event
/// schedule as QPanelA. Built once per layer by qnn; consumed by
/// q4_gemm_panel.
struct Q4PanelA {
  std::int64_t m = 0, k = 0;
  std::int64_t slab = 0;  ///< k-slab depth; every slab cut is a group boundary
  /// Quad-major layout: per row-panel, each group of 4 consecutive slab
  /// positions ("quad") packs into 12 bytes — 2 bytes per panel row r:
  ///   byte[2r]   = u(p0) | u(p1) << 4
  ///   byte[2r+1] = u(p2) | u(p3) << 4
  /// with u = code + 8 and phantom positions / padding rows stored as 0.
  /// 4 trailing slack bytes absorb the micro-kernel's 16-byte quad loads.
  std::vector<std::int8_t> data;
  /// Per row-panel, sorted by column: the requantization schedule (same
  /// contract as QPanelA::events).
  std::vector<std::vector<QFlush>> events;
  bool empty() const { return m == 0; }
};

/// Packs a dense row-major int8 code matrix (every |code| <= 7) into
/// Q4PanelA's biased-nibble quad layout. `slab` must be positive and aligned
/// to the matrix's scale-group period by the caller. Does not touch `events`.
void q4_pack_a(const std::int8_t* a, std::int64_t m, std::int64_t k,
               std::int64_t slab, Q4PanelA& out);

/// y(m, n) += requant(Wq * Xq) over a nibble-packed int4 weight: qx is the
/// (k, n) row-major int8 activation matrix, sx its scale; y must already hold
/// the bias fill. Parallel grain: one kQNC column stripe per chunk — bitwise
/// identical to q8_gemm_panel / s8_gemm_segments on the same operands.
void q4_gemm_panel(const Q4PanelA& w, const std::int8_t* qx, float sx,
                   std::int64_t n, float* y);

/// Symmetric activation quantization core (the hot half of
/// qnn::quantize_acts_into, hosted here for the kernel TU's codegen):
/// chunked-max abs scan, then per element one multiply, clamp, and
/// round-half-away-from-zero truncating cast into `dst`. Returns the scale.
/// Every per-element operation is exact and order-independent (max combines
/// associatively; the convert touches each element once), so the result is
/// identical at any vector width or thread count.
float s8_quantize(const float* src, std::int64_t n, int bits, std::int8_t* dst);

/// int8 im2col gather (the hot half of qnn's im2col, hosted here for the
/// kernel TU's codegen): pure byte moves — out-of-bounds taps become code 0,
/// interior runs of stride-1 rows collapse to memcpy. Bitwise trivially
/// deterministic. `out` must hold (c*k*k, oh*ow) codes.
void s8_im2col(const std::int8_t* in, std::int64_t c, std::int64_t h,
               std::int64_t w, int k, int stride, int pad, std::int64_t oh,
               std::int64_t ow, std::int8_t* out);

/// Tap-compacted int8 im2col gather for pattern-pruned convs: only the
/// `ntaps` surviving kernel slots (`taps[t]` = ky*k + kx, ascending) are
/// gathered per input channel, so the column matrix has c*ntaps rows instead
/// of c*k*k — the k-dimension shrinks by the pruned fraction before the GEMM
/// ever runs. Row r of `out` is exactly row (r/ntaps)*k*k + taps[r%ntaps] of
/// the full s8_im2col matrix (same byte moves, same padding-zero fills), so
/// feeding the compacted matrix to a weight panel whose columns were
/// compacted by the same tap list is bitwise identical to the full gather.
/// `out` must hold (c*ntaps, oh*ow) codes.
void s8_im2col_taps(const std::int8_t* in, std::int64_t c, std::int64_t h,
                    std::int64_t w, int k, int stride, int pad,
                    std::int64_t oh, std::int64_t ow, const std::int32_t* taps,
                    std::int64_t ntaps, std::int8_t* out);

}  // namespace upaq::gemm
