#include "tensor/workspace.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/obs.h"
#include "prof/prof.h"
#include "tensor/check.h"

namespace upaq::workspace {

namespace {

constexpr std::size_t kMinBlockBytes = 1 << 16;  // 64 KiB seed block

std::atomic<bool> g_reuse{true};

/// Registry of every arena Rep ever created, so stats() can aggregate across
/// threads (including pool workers). Reps are owned jointly by the creating
/// thread and the registry, mirroring prof's thread-buffer pattern.
struct RepRegistry;

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

}  // namespace

struct Arena::Block {
  std::unique_ptr<unsigned char[]> data;
  std::size_t size = 0;
};

struct Arena::Rep {
  std::vector<Block> blocks;
  // Stats are written only by the owning thread; stats() reads them from
  // other threads, hence relaxed atomics rather than plain fields.
  std::atomic<std::uint64_t> block_allocs{0};
  std::atomic<std::uint64_t> reuses{0};
  std::atomic<std::uint64_t> high_water{0};
  std::atomic<std::uint64_t> capacity{0};
};

namespace {

std::mutex g_registry_mutex;
std::vector<std::shared_ptr<Arena::Rep>>& registry() {
  static auto* r = new std::vector<std::shared_ptr<Arena::Rep>>();
  return *r;
}

std::shared_ptr<Arena::Rep> make_registered_rep() {
  auto rep = std::make_shared<Arena::Rep>();
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  registry().push_back(rep);
  return rep;
}

}  // namespace

Arena::~Arena() = default;  // Rep stays alive via the registry

Arena::Rep* Arena::rep() {
  if (rep_ == nullptr) {
    // The shared_ptr in the registry keeps the Rep alive for stats() even
    // after the owning thread (and this Arena) is gone; the raw pointer here
    // is valid for the arena's whole life because the registry never shrinks.
    rep_ = make_registered_rep().get();
  }
  return rep_;
}

void* Arena::alloc(std::size_t bytes, std::size_t align) {
  UPAQ_CHECK(align != 0 && (align & (align - 1)) == 0 && align <= 4096,
             "workspace: alignment must be a power of two <= 4096");
  Rep& r = *rep();
  // Live accounting adds the full alignment slack so a coalesced single
  // block sized to the high-water mark always fits the same allocation
  // sequence regardless of where alignment padding lands.
  live_ += bytes + align;
  const std::uint64_t hw = r.high_water.load(std::memory_order_relaxed);
  if (live_ > hw) {
    r.high_water.store(live_, std::memory_order_relaxed);
    // Process-wide ratchet: the gauge keeps the largest per-thread arena
    // high-water mark (the sizing number a coalesced block needs).
    obs::gauge_max(obs::Gauge::kArenaHighWater,
                   static_cast<std::int64_t>(live_));
  }

  while (cur_ < r.blocks.size()) {
    const std::size_t off = align_up(off_, align);
    if (off + bytes <= r.blocks[cur_].size) {
      off_ = off + bytes;
      r.reuses.fetch_add(1, std::memory_order_relaxed);
      prof::add(prof::Counter::kWorkspaceReuses, 1);
      return r.blocks[cur_].data.get() + off;
    }
    // Current block exhausted: move on (its tail is wasted until the next
    // release-to-empty coalesces the blocks).
    ++cur_;
    off_ = 0;
  }

  // Grow: geometric doubling bounded below by the request itself.
  std::size_t size = std::max<std::size_t>(kMinBlockBytes, bytes + align);
  size = std::max(size, static_cast<std::size_t>(
                            r.capacity.load(std::memory_order_relaxed)) *
                            2);
  Block b;
  b.data = std::make_unique<unsigned char[]>(size);
  b.size = size;
  r.capacity.fetch_add(size, std::memory_order_relaxed);
  r.block_allocs.fetch_add(1, std::memory_order_relaxed);
  prof::add(prof::Counter::kWorkspaceBytes, size);
  r.blocks.push_back(std::move(b));
  cur_ = r.blocks.size() - 1;
  const std::size_t off =
      align_up(reinterpret_cast<std::size_t>(r.blocks[cur_].data.get()),
               align) -
      reinterpret_cast<std::size_t>(r.blocks[cur_].data.get());
  off_ = off + bytes;
  return r.blocks[cur_].data.get() + off;
}

void Arena::release(const Mark& m) {
  cur_ = m.block;
  off_ = m.offset;
  live_ = m.live;
  if (live_ != 0 || rep_ == nullptr) return;
  Rep& r = *rep_;
  if (!g_reuse.load(std::memory_order_relaxed)) {
    // Ablation mode: drop everything so the next pass pays its allocations.
    if (!r.blocks.empty()) {
      r.capacity.store(0, std::memory_order_relaxed);
      r.blocks.clear();
      cur_ = off_ = 0;
    }
    return;
  }
  if (r.blocks.size() <= 1) return;
  // Fragmented warm-up: replace the block chain with one block that covers
  // the high-water mark. This is the last heap allocation a steady-state
  // workload ever sees — afterwards every pass replays inside this block.
  const std::size_t want = align_up(
      static_cast<std::size_t>(r.high_water.load(std::memory_order_relaxed)),
      4096);
  Block b;
  b.data = std::make_unique<unsigned char[]>(want);
  b.size = want;
  r.blocks.clear();
  r.blocks.push_back(std::move(b));
  r.capacity.store(want, std::memory_order_relaxed);
  r.block_allocs.fetch_add(1, std::memory_order_relaxed);
  prof::add(prof::Counter::kWorkspaceBytes, want);
  cur_ = off_ = 0;
}

std::uint64_t Arena::block_allocs() const {
  return rep_ ? rep_->block_allocs.load(std::memory_order_relaxed) : 0;
}
std::uint64_t Arena::reuses() const {
  return rep_ ? rep_->reuses.load(std::memory_order_relaxed) : 0;
}
std::uint64_t Arena::high_water() const {
  return rep_ ? rep_->high_water.load(std::memory_order_relaxed) : 0;
}
std::uint64_t Arena::capacity() const {
  return rep_ ? rep_->capacity.load(std::memory_order_relaxed) : 0;
}

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

Stats stats() {
  Stats s;
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (const auto& rep : registry()) {
    s.block_allocs += rep->block_allocs.load(std::memory_order_relaxed);
    s.reuses += rep->reuses.load(std::memory_order_relaxed);
    s.high_water_bytes += rep->high_water.load(std::memory_order_relaxed);
    s.capacity_bytes += rep->capacity.load(std::memory_order_relaxed);
  }
  return s;
}

void set_reuse(bool on) { g_reuse.store(on, std::memory_order_relaxed); }
bool reuse_enabled() { return g_reuse.load(std::memory_order_relaxed); }

}  // namespace upaq::workspace
