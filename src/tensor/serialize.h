// Minimal binary (de)serialization for tensors and named tensor maps.
//
// Used by the model zoo to cache trained weights on disk so benchmarks load
// instantly after the first run. The format is a tiny tagged container:
//   magic "UPAQTNSR" | u32 version | u32 count | repeated entries of
//   (u32 name_len, name bytes, u32 rank, i64 dims..., f32 data...).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.h"

namespace upaq::io {

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

/// Writes a named map of tensors; throws std::runtime_error on I/O failure.
void save_tensor_map(const std::string& path,
                     const std::map<std::string, Tensor>& tensors);

/// Reads a named map of tensors; throws std::runtime_error on parse failure.
std::map<std::string, Tensor> load_tensor_map(const std::string& path);

/// True if `path` exists and starts with the tensor-map magic.
bool is_tensor_map_file(const std::string& path);

}  // namespace upaq::io
