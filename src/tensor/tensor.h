// Dense float32 tensor with row-major (C-contiguous) layout.
//
// This is the storage type shared by the NN framework, the compression
// algorithms, and the evaluation code. It deliberately stays small: dense
// row-major float storage, shape bookkeeping, and elementwise helpers.
// Layout convention for 4-D tensors is NCHW; convolution kernels are
// (out_channels, in_channels, kh, kw).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/check.h"
#include "tensor/rng.h"

namespace upaq {

/// Shape of a tensor; up to any rank, but the library mostly uses 1-4 dims.
using Shape = std::vector<std::int64_t>;

std::string shape_to_string(const Shape& s);
std::int64_t shape_numel(const Shape& s);
bool shape_equal(const Shape& a, const Shape& b);

class Tensor {
 public:
  /// Empty 0-element tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor adopting the given flat data (size must match the shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }

  /// i.i.d. U[lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo = -1.0f, float hi = 1.0f);
  /// i.i.d. N(mean, stddev^2) entries.
  static Tensor normal(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// Kaiming/He-style init for a conv/linear weight: N(0, sqrt(2/fan_in)).
  static Tensor kaiming(Shape shape, Rng& rng);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(std::int64_t n);

  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const {
    UPAQ_CHECK(i < shape_.size(), "dim index out of range");
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return std::span<float>(data_); }
  std::span<const float> flat() const { return std::span<const float>(data_); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Bounds-checked flat access.
  float& at_flat(std::int64_t i);
  float at_flat(std::int64_t i) const;

  // Multi-dimensional accessors (unchecked in release hot paths; the index
  // computation itself asserts rank).
  float& at(std::int64_t i0) { return data_[idx({i0})]; }
  float& at(std::int64_t i0, std::int64_t i1) { return data_[idx({i0, i1})]; }
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
    return data_[idx({i0, i1, i2})];
  }
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3) {
    return data_[idx({i0, i1, i2, i3})];
  }
  float at(std::int64_t i0) const { return data_[idx({i0})]; }
  float at(std::int64_t i0, std::int64_t i1) const { return data_[idx({i0, i1})]; }
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const {
    return data_[idx({i0, i1, i2})];
  }
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3) const {
    return data_[idx({i0, i1, i2, i3})];
  }

  /// Reshape to a new shape with the same number of elements.
  Tensor reshape(Shape new_shape) const;
  /// Flatten to 1-D.
  Tensor flatten() const { return reshape({numel()}); }
  /// Deep copy (Tensor is a value type; this is explicit for readability at
  /// call sites that care, e.g. Algorithm 3's deepcopy(M)).
  Tensor clone() const { return *this; }

  // ---- elementwise / reduction helpers ----
  void fill(float v);
  void zero() { fill(0.0f); }
  Tensor& add_(const Tensor& other);            ///< this += other
  Tensor& sub_(const Tensor& other);            ///< this -= other
  Tensor& mul_(const Tensor& other);            ///< this *= other (Hadamard)
  Tensor& scale_(float s);                      ///< this *= s
  Tensor& apply_(const std::function<float(float)>& f);

  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float abs_max() const;
  /// Population variance (divides by N). Returns 0 for empty tensors.
  float var() const;
  float l2_norm() const;
  std::int64_t count_nonzero() const;
  std::int64_t argmax() const;

  std::string to_string(int max_elems = 16) const;

 private:
  std::size_t idx(std::initializer_list<std::int64_t> indices) const;

  Shape shape_;
  std::vector<float> data_;
};

// Free-function elementwise arithmetic (value-returning).
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float s);

}  // namespace upaq
