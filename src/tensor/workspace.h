// Per-thread workspace arena: zero-steady-state-allocation scratch memory.
//
// Every hot-path scratch buffer (im2col column matrices, GEMM panel packs,
// int8 activation codes, integer accumulators) is carved out of a per-thread
// bump arena instead of the general heap. Usage is strictly scoped:
//
//   workspace::Scope ws;                  // marks the thread arena
//   float* cols = ws.floats(rows * n);    // bump allocation, 64B aligned
//   ...                                   // nested Scopes are fine (LIFO)
//                                         // ~Scope releases back to the mark
//
// The arena grows by doubling blocks while a workload is warming up; when a
// release returns the arena to empty and more than one block exists, the
// blocks are coalesced into a single block sized to the high-water mark (plus
// the alignment slack already accounted per allocation), so a repeated
// workload performs ZERO heap allocations after warm-up. The zoo of pool
// worker threads each own an independent arena (plain thread_local), so no
// synchronization exists on the allocation path at all.
//
// Determinism: the arena hands out memory, never values — buffers are always
// fully written before being read (callers treat them as uninitialized), so
// arena state cannot leak into results. Statistics are relaxed atomics
// aggregated over a global registry (same pattern as prof's thread buffers).
//
// The `set_reuse(false)` switch makes every release-to-empty drop all blocks,
// restoring a fresh-allocation-per-pass regime; the workspace-on/off rows of
// bench_ablation_micro use it to price the allocations the arena removes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace upaq::workspace {

/// Aggregate over every thread arena in the process.
struct Stats {
  std::uint64_t block_allocs = 0;     ///< heap blocks ever requested
  std::uint64_t reuses = 0;           ///< allocations served without the heap
  std::uint64_t high_water_bytes = 0; ///< sum of per-thread live-byte peaks
  std::uint64_t capacity_bytes = 0;   ///< sum of currently held block bytes
};

class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  struct Mark {
    std::size_t block = 0, offset = 0, live = 0;
  };

  struct Block;
  struct Rep;  // atomic stats + block list, defined in workspace.cpp

  /// Bump-allocates `bytes` aligned to `align` (power of two, <= 4096).
  void* alloc(std::size_t bytes, std::size_t align);

  Mark mark() const { return {cur_, off_, live_}; }

  /// Restores the arena to `m`. Releasing back to empty triggers block
  /// coalescing (reuse on) or block freeing (reuse off).
  void release(const Mark& m);

  std::uint64_t block_allocs() const;
  std::uint64_t reuses() const;
  std::uint64_t high_water() const;
  std::uint64_t capacity() const;

 private:
  Rep* rep();  // lazily built so the header stays std-light
  Rep* rep_ = nullptr;
  std::size_t cur_ = 0;   ///< index of the block being bumped
  std::size_t off_ = 0;   ///< offset within that block
  std::size_t live_ = 0;  ///< bytes (plus alignment slack) currently live
};

/// The calling thread's arena. Pool workers and the main thread each get
/// their own; arenas live until thread exit and are registered globally so
/// stats() can aggregate them.
Arena& thread_arena();

/// RAII mark/release over the calling thread's arena.
class Scope {
 public:
  Scope() : arena_(thread_arena()), mark_(arena_.mark()) {}
  ~Scope() { arena_.release(mark_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  float* floats(std::int64_t n) {
    return static_cast<float*>(
        arena_.alloc(static_cast<std::size_t>(n) * sizeof(float), 64));
  }
  std::int8_t* i8(std::int64_t n) {
    return static_cast<std::int8_t*>(
        arena_.alloc(static_cast<std::size_t>(n), 64));
  }
  std::int32_t* i32(std::int64_t n) {
    return static_cast<std::int32_t*>(
        arena_.alloc(static_cast<std::size_t>(n) * sizeof(std::int32_t), 64));
  }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Process-wide aggregate across all registered arenas.
Stats stats();

/// Reuse switch (default on). Off: arenas free their blocks whenever they
/// release to empty, so every pass pays its allocations — the ablation
/// baseline. Affects arenas on their next release; thread-safe.
void set_reuse(bool on);
bool reuse_enabled();

}  // namespace upaq::workspace
