// Deterministic random-number utilities.
//
// Every stochastic component in UPAQ (weight init, the Algorithm-2 pattern
// generator, the synthetic dataset) takes an explicit Rng so runs are
// reproducible bit-for-bit and tests can sweep seeds.
#pragma once

#include <cstdint>
#include <random>

namespace upaq {

/// Thin deterministic RNG wrapper around std::mt19937_64 with convenience
/// draws used throughout the codebase.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Derive an independent child stream; used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace upaq
