#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace upaq::io {

namespace {

constexpr char kMagic[8] = {'U', 'P', 'A', 'Q', 'T', 'N', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("tensor deserialize: truncated stream");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i)
    write_pod<std::int64_t>(os, t.shape()[i]);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(sizeof(float) * t.numel()));
}

Tensor read_tensor(std::istream& is) {
  const auto rank = read_pod<std::uint32_t>(is);
  if (rank > 8) throw std::runtime_error("tensor deserialize: absurd rank");
  Shape shape(rank);
  for (auto& d : shape) {
    d = read_pod<std::int64_t>(is);
    if (d < 0 || d > (1LL << 32))
      throw std::runtime_error("tensor deserialize: absurd dimension");
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(sizeof(float) * t.numel()));
  if (!is) throw std::runtime_error("tensor deserialize: truncated data");
  return t;
}

void save_tensor_map(const std::string& path,
                     const std::map<std::string, Tensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  os.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(os, kVersion);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_tensor(os, tensor);
  }
  if (!os) throw std::runtime_error("write failed: " + path);
}

std::map<std::string, Tensor> load_tensor_map(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("not a UPAQ tensor map: " + path);
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion)
    throw std::runtime_error("unsupported tensor map version in " + path);
  const auto count = read_pod<std::uint32_t>(is);
  std::map<std::string, Tensor> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto len = read_pod<std::uint32_t>(is);
    std::string name(len, '\0');
    is.read(name.data(), len);
    if (!is) throw std::runtime_error("truncated name in " + path);
    out.emplace(std::move(name), read_tensor(is));
  }
  return out;
}

bool is_tensor_map_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[8];
  is.read(magic, sizeof(magic));
  return is && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace upaq::io
