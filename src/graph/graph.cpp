#include "graph/graph.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "tensor/check.h"

namespace upaq::graph {

int Graph::add_node(std::string name, nn::Layer* layer, std::vector<int> inputs) {
  UPAQ_CHECK(by_name_.find(name) == by_name_.end(),
             "duplicate graph node name: " + name);
  for (int in : inputs)
    UPAQ_CHECK(in >= 0 && in < size(),
               "graph node " + name + " references unknown input " +
                   std::to_string(in));
  const int id = size();
  by_name_.emplace(name, id);
  nodes_.push_back(Node{std::move(name), layer, std::move(inputs)});
  return id;
}

const Node& Graph::node(int id) const {
  UPAQ_CHECK(id >= 0 && id < size(), "graph node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

int Graph::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

bool Graph::prunable(int id) const {
  const auto* l = node(id).layer;
  if (l == nullptr) return false;
  return l->kind() == nn::LayerKind::kConv2d ||
         l->kind() == nn::LayerKind::kLinear;
}

int Graph::kernel_size(int id) const {
  const auto* l = node(id).layer;
  UPAQ_CHECK(l != nullptr, "kernel_size of dataflow node");
  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(l)) return conv->kernel();
  if (dynamic_cast<const nn::Linear*>(l) != nullptr) return 1;
  UPAQ_CHECK(false, "kernel_size of non-prunable node " + node(id).name);
  return 0;
}

int Graph::find_root(int id, const std::map<int, int>& assigned_roots) const {
  UPAQ_CHECK(prunable(id), "find_root on non-prunable node " + node(id).name);
  const int want_k = kernel_size(id);
  // Iterative DFS upward through dataflow/norm/activation nodes. Stops at
  // the first prunable ancestor on each path; only geometry-compatible
  // ancestors can act as roots.
  std::vector<int> stack(node(id).inputs.begin(), node(id).inputs.end());
  std::set<int> seen;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    if (prunable(cur)) {
      if (kernel_size(cur) == want_k) {
        // Path compression: adopt the ancestor's root when it already has
        // one, otherwise the ancestor itself is the root.
        auto it = assigned_roots.find(cur);
        return it == assigned_roots.end() ? cur : it->second;
      }
      // Geometry-incompatible prunable ancestor terminates this path: its
      // own mask cannot be shared across kernel sizes.
      continue;
    }
    for (int in : node(cur).inputs) stack.push_back(in);
  }
  return id;  // no compatible ancestor: the layer is its own root
}

std::vector<LayerGroup> Graph::build_groups() const {
  // Mirrors Algorithm 1: iterate layers in graph order, find each layer's
  // root, and append to (or create) the root's group.
  std::map<int, int> assigned_roots;           // node id -> root id
  std::map<int, LayerGroup> groups_init;       // root id -> group
  std::vector<int> root_order;                 // stable output ordering
  for (int id = 0; id < size(); ++id) {
    if (!prunable(id)) continue;
    const int root = find_root(id, assigned_roots);
    assigned_roots[id] = root;
    auto it = groups_init.find(root);
    if (it == groups_init.end()) {
      LayerGroup g;
      g.root = root;
      g.members.push_back(id);
      groups_init.emplace(root, std::move(g));
      root_order.push_back(root);
    } else {
      it->second.members.push_back(id);
    }
  }
  std::vector<LayerGroup> out;
  out.reserve(root_order.size());
  for (int root : root_order) out.push_back(groups_init.at(root));
  return out;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  for (int id = 0; id < size(); ++id) {
    const auto& n = nodes_[static_cast<std::size_t>(id)];
    os << id << ": " << n.name;
    if (n.layer != nullptr) os << " [" << nn::layer_kind_name(n.layer->kind()) << "]";
    os << " <- (";
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      if (i) os << ", ";
      os << n.inputs[i];
    }
    os << ")\n";
  }
  return os.str();
}

void validate_groups(const Graph& g, const std::vector<LayerGroup>& groups) {
  std::set<int> seen;
  for (const auto& grp : groups) {
    UPAQ_ASSERT(grp.root >= 0 && grp.root < g.size(), "group root out of range");
    UPAQ_ASSERT(g.prunable(grp.root), "group root is not prunable");
    UPAQ_ASSERT(!grp.members.empty(), "empty group");
    UPAQ_ASSERT(std::find(grp.members.begin(), grp.members.end(), grp.root) !=
                    grp.members.end(),
                "group does not contain its root");
    const int k = g.kernel_size(grp.root);
    for (int m : grp.members) {
      UPAQ_ASSERT(g.prunable(m), "group member is not prunable");
      UPAQ_ASSERT(g.kernel_size(m) == k,
                  "group member kernel size differs from root");
      UPAQ_ASSERT(seen.insert(m).second, "node appears in two groups");
    }
  }
  for (int id = 0; id < g.size(); ++id)
    if (g.prunable(id))
      UPAQ_ASSERT(seen.count(id) == 1, "prunable node missing from groups");
}

}  // namespace upaq::graph
