// Computation graph over model layers + Algorithm 1 (preprocessing).
//
// The paper derives the computation graph of the pretrained model and runs a
// depth-first search to partition prunable layers into root/leaf groups:
// a layer with no prunable ancestor of compatible kernel geometry becomes its
// own root; every other layer adopts the root of its nearest compatible
// prunable ancestor. UPAQ then optimizes only root layers and replicates the
// chosen pattern/bitwidth to the leaves.
//
// Our models register their topology explicitly when they are built (the
// paper traces it "through backpropagation"; an explicit registration gives
// the same DAG without a tape).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/module.h"

namespace upaq::graph {

/// One vertex of the computation DAG. A node usually wraps a registered
/// layer; pure-dataflow vertices (concat, add, input) have layer == nullptr.
struct Node {
  std::string name;
  nn::Layer* layer = nullptr;  ///< non-owning; may be null for dataflow nodes
  std::vector<int> inputs;     ///< producer node ids
};

/// Root/leaf group from Algorithm 1: `root` plus every layer that adopted it.
struct LayerGroup {
  int root = -1;
  std::vector<int> members;  ///< includes the root, in discovery order
};

class Graph {
 public:
  /// Adds a node and returns its id. Input ids must already exist.
  int add_node(std::string name, nn::Layer* layer, std::vector<int> inputs);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int id) const;
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Finds a node id by name; -1 when absent.
  int find(const std::string& name) const;

  /// True when the node wraps a prunable layer (Conv2d or Linear).
  bool prunable(int id) const;

  /// Kernel spatial size of a prunable node (Linear counts as 1x1).
  int kernel_size(int id) const;

  /// Algorithm 1, line 4: DFS upward from `id` to the nearest prunable
  /// ancestor with the same kernel geometry; returns that ancestor's root
  /// (path-compressed) or `id` itself when no compatible ancestor exists.
  int find_root(int id, const std::map<int, int>& assigned_roots) const;

  /// Algorithm 1 end-to-end: partitions all prunable nodes into root/leaf
  /// groups; every prunable node appears in exactly one group.
  std::vector<LayerGroup> build_groups() const;

  std::string to_string() const;

 private:
  std::vector<Node> nodes_;
  std::map<std::string, int> by_name_;
};

/// Sanity check: each prunable node is in exactly one group, each group's
/// members share the root's kernel geometry. Throws std::logic_error on
/// violation; used by tests and by the compression driver in debug paths.
void validate_groups(const Graph& g, const std::vector<LayerGroup>& groups);

}  // namespace upaq::graph
