file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_model_zoo.dir/bench_table1_model_zoo.cpp.o"
  "CMakeFiles/bench_table1_model_zoo.dir/bench_table1_model_zoo.cpp.o.d"
  "bench_table1_model_zoo"
  "bench_table1_model_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
