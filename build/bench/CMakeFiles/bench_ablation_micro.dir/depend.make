# Empty dependencies file for bench_ablation_micro.
# This may be replaced when dependencies are built.
