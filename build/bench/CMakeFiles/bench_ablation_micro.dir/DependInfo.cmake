
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_micro.cpp" "bench/CMakeFiles/bench_ablation_micro.dir/bench_ablation_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_micro.dir/bench_ablation_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/upaq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/qnn/CMakeFiles/upaq_qnn.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/upaq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/upaq_prune.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/upaq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/upaq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/upaq_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
