# Empty compiler generated dependencies file for bench_ablation_upaq.
# This may be replaced when dependencies are built.
