file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_upaq.dir/bench_ablation_upaq.cpp.o"
  "CMakeFiles/bench_ablation_upaq.dir/bench_ablation_upaq.cpp.o.d"
  "bench_ablation_upaq"
  "bench_ablation_upaq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_upaq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
