# Empty dependencies file for bench_fig6_qualitative.
# This may be replaced when dependencies are built.
