file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_qualitative.dir/bench_fig6_qualitative.cpp.o"
  "CMakeFiles/bench_fig6_qualitative.dir/bench_fig6_qualitative.cpp.o.d"
  "bench_fig6_qualitative"
  "bench_fig6_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
