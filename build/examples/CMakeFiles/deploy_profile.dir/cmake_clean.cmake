file(REMOVE_RECURSE
  "CMakeFiles/deploy_profile.dir/deploy_profile.cpp.o"
  "CMakeFiles/deploy_profile.dir/deploy_profile.cpp.o.d"
  "deploy_profile"
  "deploy_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
