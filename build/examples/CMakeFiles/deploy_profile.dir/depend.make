# Empty dependencies file for deploy_profile.
# This may be replaced when dependencies are built.
