# Empty dependencies file for compress_pointpillars.
# This may be replaced when dependencies are built.
