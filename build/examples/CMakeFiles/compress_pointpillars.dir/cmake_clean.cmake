file(REMOVE_RECURSE
  "CMakeFiles/compress_pointpillars.dir/compress_pointpillars.cpp.o"
  "CMakeFiles/compress_pointpillars.dir/compress_pointpillars.cpp.o.d"
  "compress_pointpillars"
  "compress_pointpillars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_pointpillars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
