file(REMOVE_RECURSE
  "CMakeFiles/upaq_tool.dir/upaq_tool.cpp.o"
  "CMakeFiles/upaq_tool.dir/upaq_tool.cpp.o.d"
  "upaq_tool"
  "upaq_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
