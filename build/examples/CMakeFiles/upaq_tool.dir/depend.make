# Empty dependencies file for upaq_tool.
# This may be replaced when dependencies are built.
