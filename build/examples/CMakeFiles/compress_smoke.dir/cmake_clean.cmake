file(REMOVE_RECURSE
  "CMakeFiles/compress_smoke.dir/compress_smoke.cpp.o"
  "CMakeFiles/compress_smoke.dir/compress_smoke.cpp.o.d"
  "compress_smoke"
  "compress_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
