# Empty dependencies file for compress_smoke.
# This may be replaced when dependencies are built.
