
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/losses.cpp" "src/train/CMakeFiles/upaq_train.dir/losses.cpp.o" "gcc" "src/train/CMakeFiles/upaq_train.dir/losses.cpp.o.d"
  "/root/repo/src/train/optimizer.cpp" "src/train/CMakeFiles/upaq_train.dir/optimizer.cpp.o" "gcc" "src/train/CMakeFiles/upaq_train.dir/optimizer.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/upaq_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/upaq_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/upaq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/upaq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/upaq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/upaq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/upaq_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
