file(REMOVE_RECURSE
  "libupaq_train.a"
)
