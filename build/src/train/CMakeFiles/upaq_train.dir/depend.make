# Empty dependencies file for upaq_train.
# This may be replaced when dependencies are built.
