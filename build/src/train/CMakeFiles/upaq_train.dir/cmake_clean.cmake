file(REMOVE_RECURSE
  "CMakeFiles/upaq_train.dir/losses.cpp.o"
  "CMakeFiles/upaq_train.dir/losses.cpp.o.d"
  "CMakeFiles/upaq_train.dir/optimizer.cpp.o"
  "CMakeFiles/upaq_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/upaq_train.dir/trainer.cpp.o"
  "CMakeFiles/upaq_train.dir/trainer.cpp.o.d"
  "libupaq_train.a"
  "libupaq_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
