file(REMOVE_RECURSE
  "CMakeFiles/upaq_data.dir/scene.cpp.o"
  "CMakeFiles/upaq_data.dir/scene.cpp.o.d"
  "libupaq_data.a"
  "libupaq_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
