file(REMOVE_RECURSE
  "libupaq_data.a"
)
