# Empty dependencies file for upaq_data.
# This may be replaced when dependencies are built.
