file(REMOVE_RECURSE
  "CMakeFiles/upaq_tensor.dir/ops.cpp.o"
  "CMakeFiles/upaq_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/upaq_tensor.dir/serialize.cpp.o"
  "CMakeFiles/upaq_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/upaq_tensor.dir/tensor.cpp.o"
  "CMakeFiles/upaq_tensor.dir/tensor.cpp.o.d"
  "libupaq_tensor.a"
  "libupaq_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
