file(REMOVE_RECURSE
  "libupaq_tensor.a"
)
