# Empty compiler generated dependencies file for upaq_tensor.
# This may be replaced when dependencies are built.
