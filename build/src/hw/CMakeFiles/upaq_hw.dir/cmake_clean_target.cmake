file(REMOVE_RECURSE
  "libupaq_hw.a"
)
