file(REMOVE_RECURSE
  "CMakeFiles/upaq_hw.dir/cost.cpp.o"
  "CMakeFiles/upaq_hw.dir/cost.cpp.o.d"
  "CMakeFiles/upaq_hw.dir/power.cpp.o"
  "CMakeFiles/upaq_hw.dir/power.cpp.o.d"
  "libupaq_hw.a"
  "libupaq_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
