# Empty dependencies file for upaq_hw.
# This may be replaced when dependencies are built.
