file(REMOVE_RECURSE
  "libupaq_graph.a"
)
