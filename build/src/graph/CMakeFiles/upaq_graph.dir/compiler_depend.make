# Empty compiler generated dependencies file for upaq_graph.
# This may be replaced when dependencies are built.
