file(REMOVE_RECURSE
  "CMakeFiles/upaq_graph.dir/graph.cpp.o"
  "CMakeFiles/upaq_graph.dir/graph.cpp.o.d"
  "libupaq_graph.a"
  "libupaq_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
