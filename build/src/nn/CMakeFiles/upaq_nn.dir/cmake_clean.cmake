file(REMOVE_RECURSE
  "CMakeFiles/upaq_nn.dir/conv.cpp.o"
  "CMakeFiles/upaq_nn.dir/conv.cpp.o.d"
  "CMakeFiles/upaq_nn.dir/layers.cpp.o"
  "CMakeFiles/upaq_nn.dir/layers.cpp.o.d"
  "CMakeFiles/upaq_nn.dir/module.cpp.o"
  "CMakeFiles/upaq_nn.dir/module.cpp.o.d"
  "libupaq_nn.a"
  "libupaq_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
