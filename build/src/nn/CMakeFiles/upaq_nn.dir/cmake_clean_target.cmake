file(REMOVE_RECURSE
  "libupaq_nn.a"
)
