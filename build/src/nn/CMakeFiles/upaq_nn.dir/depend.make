# Empty dependencies file for upaq_nn.
# This may be replaced when dependencies are built.
