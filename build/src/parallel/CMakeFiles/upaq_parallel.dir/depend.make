# Empty dependencies file for upaq_parallel.
# This may be replaced when dependencies are built.
