file(REMOVE_RECURSE
  "libupaq_parallel.a"
)
