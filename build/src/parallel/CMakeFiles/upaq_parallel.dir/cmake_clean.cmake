file(REMOVE_RECURSE
  "CMakeFiles/upaq_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/upaq_parallel.dir/thread_pool.cpp.o.d"
  "libupaq_parallel.a"
  "libupaq_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
