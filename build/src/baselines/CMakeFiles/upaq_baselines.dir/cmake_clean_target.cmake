file(REMOVE_RECURSE
  "libupaq_baselines.a"
)
