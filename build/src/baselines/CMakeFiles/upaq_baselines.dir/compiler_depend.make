# Empty compiler generated dependencies file for upaq_baselines.
# This may be replaced when dependencies are built.
