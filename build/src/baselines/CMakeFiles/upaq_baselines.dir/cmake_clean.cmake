file(REMOVE_RECURSE
  "CMakeFiles/upaq_baselines.dir/baselines.cpp.o"
  "CMakeFiles/upaq_baselines.dir/baselines.cpp.o.d"
  "libupaq_baselines.a"
  "libupaq_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
