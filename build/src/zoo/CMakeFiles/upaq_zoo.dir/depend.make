# Empty dependencies file for upaq_zoo.
# This may be replaced when dependencies are built.
