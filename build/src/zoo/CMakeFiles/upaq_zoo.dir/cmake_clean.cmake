file(REMOVE_RECURSE
  "CMakeFiles/upaq_zoo.dir/experiment.cpp.o"
  "CMakeFiles/upaq_zoo.dir/experiment.cpp.o.d"
  "CMakeFiles/upaq_zoo.dir/zoo.cpp.o"
  "CMakeFiles/upaq_zoo.dir/zoo.cpp.o.d"
  "libupaq_zoo.a"
  "libupaq_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
