file(REMOVE_RECURSE
  "libupaq_zoo.a"
)
