# Empty compiler generated dependencies file for upaq_eval.
# This may be replaced when dependencies are built.
