file(REMOVE_RECURSE
  "libupaq_eval.a"
)
