file(REMOVE_RECURSE
  "CMakeFiles/upaq_eval.dir/box.cpp.o"
  "CMakeFiles/upaq_eval.dir/box.cpp.o.d"
  "CMakeFiles/upaq_eval.dir/map.cpp.o"
  "CMakeFiles/upaq_eval.dir/map.cpp.o.d"
  "libupaq_eval.a"
  "libupaq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
