
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/box.cpp" "src/eval/CMakeFiles/upaq_eval.dir/box.cpp.o" "gcc" "src/eval/CMakeFiles/upaq_eval.dir/box.cpp.o.d"
  "/root/repo/src/eval/map.cpp" "src/eval/CMakeFiles/upaq_eval.dir/map.cpp.o" "gcc" "src/eval/CMakeFiles/upaq_eval.dir/map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/upaq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/upaq_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
