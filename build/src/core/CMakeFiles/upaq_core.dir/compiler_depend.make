# Empty compiler generated dependencies file for upaq_core.
# This may be replaced when dependencies are built.
