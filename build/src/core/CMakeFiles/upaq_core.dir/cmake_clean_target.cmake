file(REMOVE_RECURSE
  "libupaq_core.a"
)
