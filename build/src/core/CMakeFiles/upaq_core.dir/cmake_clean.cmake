file(REMOVE_RECURSE
  "CMakeFiles/upaq_core.dir/efficiency.cpp.o"
  "CMakeFiles/upaq_core.dir/efficiency.cpp.o.d"
  "CMakeFiles/upaq_core.dir/plan.cpp.o"
  "CMakeFiles/upaq_core.dir/plan.cpp.o.d"
  "CMakeFiles/upaq_core.dir/qmodel.cpp.o"
  "CMakeFiles/upaq_core.dir/qmodel.cpp.o.d"
  "CMakeFiles/upaq_core.dir/upaq.cpp.o"
  "CMakeFiles/upaq_core.dir/upaq.cpp.o.d"
  "libupaq_core.a"
  "libupaq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
