file(REMOVE_RECURSE
  "CMakeFiles/upaq_quant.dir/quantize.cpp.o"
  "CMakeFiles/upaq_quant.dir/quantize.cpp.o.d"
  "libupaq_quant.a"
  "libupaq_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
