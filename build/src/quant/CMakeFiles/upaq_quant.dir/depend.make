# Empty dependencies file for upaq_quant.
# This may be replaced when dependencies are built.
