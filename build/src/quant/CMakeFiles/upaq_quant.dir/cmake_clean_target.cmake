file(REMOVE_RECURSE
  "libupaq_quant.a"
)
