file(REMOVE_RECURSE
  "CMakeFiles/upaq_detectors.dir/detector.cpp.o"
  "CMakeFiles/upaq_detectors.dir/detector.cpp.o.d"
  "CMakeFiles/upaq_detectors.dir/pointpillars.cpp.o"
  "CMakeFiles/upaq_detectors.dir/pointpillars.cpp.o.d"
  "CMakeFiles/upaq_detectors.dir/smoke.cpp.o"
  "CMakeFiles/upaq_detectors.dir/smoke.cpp.o.d"
  "CMakeFiles/upaq_detectors.dir/specs.cpp.o"
  "CMakeFiles/upaq_detectors.dir/specs.cpp.o.d"
  "libupaq_detectors.a"
  "libupaq_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
