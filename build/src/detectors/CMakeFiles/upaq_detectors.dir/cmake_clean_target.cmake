file(REMOVE_RECURSE
  "libupaq_detectors.a"
)
