# Empty dependencies file for upaq_detectors.
# This may be replaced when dependencies are built.
