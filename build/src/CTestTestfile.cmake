# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("parallel")
subdirs("tensor")
subdirs("nn")
subdirs("qnn")
subdirs("graph")
subdirs("prune")
subdirs("quant")
subdirs("hw")
subdirs("data")
subdirs("eval")
subdirs("detectors")
subdirs("train")
subdirs("core")
subdirs("baselines")
subdirs("zoo")
