# Empty dependencies file for upaq_prune.
# This may be replaced when dependencies are built.
