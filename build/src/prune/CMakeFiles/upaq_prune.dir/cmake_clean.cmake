file(REMOVE_RECURSE
  "CMakeFiles/upaq_prune.dir/pattern.cpp.o"
  "CMakeFiles/upaq_prune.dir/pattern.cpp.o.d"
  "CMakeFiles/upaq_prune.dir/structured.cpp.o"
  "CMakeFiles/upaq_prune.dir/structured.cpp.o.d"
  "libupaq_prune.a"
  "libupaq_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
