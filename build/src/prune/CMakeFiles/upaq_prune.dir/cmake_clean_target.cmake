file(REMOVE_RECURSE
  "libupaq_prune.a"
)
