# Empty dependencies file for upaq_qnn.
# This may be replaced when dependencies are built.
