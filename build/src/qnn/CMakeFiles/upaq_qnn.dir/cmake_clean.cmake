file(REMOVE_RECURSE
  "CMakeFiles/upaq_qnn.dir/packed.cpp.o"
  "CMakeFiles/upaq_qnn.dir/packed.cpp.o.d"
  "CMakeFiles/upaq_qnn.dir/qgemm.cpp.o"
  "CMakeFiles/upaq_qnn.dir/qgemm.cpp.o.d"
  "CMakeFiles/upaq_qnn.dir/qlayers.cpp.o"
  "CMakeFiles/upaq_qnn.dir/qlayers.cpp.o.d"
  "libupaq_qnn.a"
  "libupaq_qnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upaq_qnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
