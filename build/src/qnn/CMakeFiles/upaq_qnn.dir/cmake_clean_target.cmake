file(REMOVE_RECURSE
  "libupaq_qnn.a"
)
