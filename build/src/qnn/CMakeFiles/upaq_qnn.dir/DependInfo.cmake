
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qnn/packed.cpp" "src/qnn/CMakeFiles/upaq_qnn.dir/packed.cpp.o" "gcc" "src/qnn/CMakeFiles/upaq_qnn.dir/packed.cpp.o.d"
  "/root/repo/src/qnn/qgemm.cpp" "src/qnn/CMakeFiles/upaq_qnn.dir/qgemm.cpp.o" "gcc" "src/qnn/CMakeFiles/upaq_qnn.dir/qgemm.cpp.o.d"
  "/root/repo/src/qnn/qlayers.cpp" "src/qnn/CMakeFiles/upaq_qnn.dir/qlayers.cpp.o" "gcc" "src/qnn/CMakeFiles/upaq_qnn.dir/qlayers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/upaq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/upaq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/upaq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/upaq_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
