
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_detectors.cpp" "tests/CMakeFiles/test_detectors.dir/test_detectors.cpp.o" "gcc" "tests/CMakeFiles/test_detectors.dir/test_detectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zoo/CMakeFiles/upaq_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/upaq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/upaq_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/upaq_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/upaq_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/upaq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/upaq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/upaq_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/upaq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/upaq_prune.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/upaq_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/qnn/CMakeFiles/upaq_qnn.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/upaq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/upaq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/upaq_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
