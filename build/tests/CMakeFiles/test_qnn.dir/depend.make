# Empty dependencies file for test_qnn.
# This may be replaced when dependencies are built.
