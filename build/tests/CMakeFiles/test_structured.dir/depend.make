# Empty dependencies file for test_structured.
# This may be replaced when dependencies are built.
