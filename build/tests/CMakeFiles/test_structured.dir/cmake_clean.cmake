file(REMOVE_RECURSE
  "CMakeFiles/test_structured.dir/test_structured.cpp.o"
  "CMakeFiles/test_structured.dir/test_structured.cpp.o.d"
  "test_structured"
  "test_structured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_structured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
